(** A selective-dissemination broker on top of any filtering engine.

    The paper's motivating deployment (Section 1): subscribers register
    XPath expressions describing their interests; the broker filters each
    incoming XML document and reports which subscribers it must be
    delivered to, and through which subscriptions.

    System-level concerns the raw engine does not handle live here:

    - {e subscriber bookkeeping}: subscriptions are grouped per subscriber,
      can be cancelled individually or wholesale, and deliveries are
      aggregated per subscriber;
    - {e multi-tenant namespaces}: every subscription and publication is
      scoped to a namespace string; tenants never see each other's
      deliveries and cannot cancel each other's subscriptions;
    - {e covering suppression} (built on {!Pf_core.Containment}): a new
      subscription that is covered by one the same subscriber already
      holds cannot change that subscriber's deliveries, so it is recorded
      but not registered in the engine; when the covering subscription is
      cancelled, its suppressed dependents are activated transparently.
      Covers are found by probing a per-(namespace, subscriber)
      shape-bucket index ({!Pf_core.Subsume.Probe}) rather than scanning
      every live subscription — exact and uncapped, so suppression
      decisions (and replay determinism) are unchanged while subscribing
      n redundant expressions costs o(n²) containment tests.

    {2 One state machine, many transports}

    The broker is driven through a {e command/event} interface:
    {!apply} takes a {!command} and returns the {!event}s it produced,
    and every front-end — the in-process convenience functions below, the
    wire server ({!Pf_net.Server}), the write-ahead-log replayer
    ({!Pf_net.Store}) and the test suites — drives this one state
    machine. Commands and events are plain serializable data, so the wire
    codec and the durability log share one serialization
    ({!Pf_net.Wire}).

    Replay determinism: applying the same command sequence to two fresh
    brokers (same engine configuration) yields identical subscription
    ids, identical suppression decisions and identical deliveries — the
    property WAL recovery relies on. Failed commands change nothing and
    consume no ids.

    The broker is thread-safe: every operation takes an internal lock, so
    connection threads may mutate subscriptions while worker domains
    {!deliveries_of_sids} concurrently. *)

type t

(** {1 Construction}

    The engine is any {!Pf_intf.FILTER}, supplied as a first-class
    module; compose configuration with the engine's own builder, e.g.
    [Broker.create ~filter:(Pf_core.Engine.filter ~stream:Stream
    ~path_cache:true ()) ()]. *)

val create : ?filter:Pf_intf.filter -> ?covering_suppression:bool -> unit -> t
(** [filter] defaults to the predicate engine with duplicate-path
    elimination ([Pf_core.Engine.filter ~dedup_paths:true ()]);
    [covering_suppression] defaults to [true]. *)

(** How the broker reaches an engine when it is not a plain in-process
    {!Pf_intf.FILTER} instance — e.g. a {!Pf_service} whose sid
    assignment and matching run on worker domains. All broker state
    transitions go through these five functions, so anything that
    implements them (and honours the {!Pf_intf.FILTER} sid contract:
    dense sids in registration order, sorted match results) can back a
    broker. *)
type port = {
  port_subscribe : Pf_xpath.Ast.path -> int;
      (** register; returns the engine sid; may raise {!Pf_intf.Unsupported} *)
  port_unsubscribe : int -> bool;
  port_match : Pf_xml.Tree.t -> int list;
  port_match_string : string -> int list;
      (** may raise {!Pf_xml.Sax.Parse_error} *)
  port_engine_metrics : unit -> Pf_obs.Registry.t option;
      (** the engine's registry, when one instance meaningfully exists *)
}

val port_of_filter : Pf_intf.filter -> port
(** Instantiate the filter once and wrap it. *)

val create_over : ?covering_suppression:bool -> port -> t
(** A broker whose engine operations go through [port] — how the wire
    server layers the broker over a domain-parallel {!Pf_service}. *)

(** {1 Deprecated configuration record}

    The pre-redesign constructor: a hand-rolled record mirroring a subset
    of {!Pf_core.Engine.create}'s parameters. Superseded by composition
    over {!Pf_core.Engine.filter}, which also unlocks [?stream],
    [?path_cache] and ingest modes the record never covered. Kept for one
    release. *)

type config = {
  variant : Pf_core.Expr_index.variant;
  attr_mode : Pf_core.Engine.attr_mode;
  dedup_paths : bool;
  covering_suppression : bool;
}
[@@ocaml.deprecated "compose Broker.create ~filter:(Pf_core.Engine.filter ...) instead"]

[@@@ocaml.alert "-deprecated"]

val default_config : config
[@@ocaml.deprecated "compose Broker.create ~filter:(Pf_core.Engine.filter ...) instead"]

val create_legacy : ?config:config -> unit -> t
[@@ocaml.deprecated "use Broker.create ?filter ?covering_suppression"]

[@@@ocaml.alert "+deprecated"]

(** {1 Subscriptions} *)

type subscription
(** Handle to one registered subscription. *)

val default_ns : string
(** [""] — the namespace every un-scoped operation uses. *)

val subscribe :
  t -> ?ns:string -> subscriber:string -> string -> (subscription, Pf_intf.error) result
(** [subscribe t ~subscriber expr] parses and registers [expr]. Syntax
    errors surface as [Error (Bad_expression _)] and engine rejections as
    [Error (Unsupported_expression _)] — the broker is unchanged and no
    subscription id is consumed. *)

val subscribe_exn : t -> ?ns:string -> subscriber:string -> string -> subscription
(** Raising variant: {!Pf_xpath.Parser.Error} on bad syntax,
    {!Pf_intf.Unsupported} on unsupported constructs. *)

val subscribe_path :
  t -> ?ns:string -> subscriber:string -> Pf_xpath.Ast.path ->
  (subscription, Pf_intf.error) result

val subscribe_path_exn : t -> ?ns:string -> subscriber:string -> Pf_xpath.Ast.path -> subscription

val unsubscribe : t -> subscription -> bool
(** Cancel one subscription; [false] if already cancelled. Suppressed
    dependents of a cancelled covering subscription are re-activated. *)

val unsubscribe_id : t -> ?ns:string -> int -> (bool, Pf_intf.error) result
(** Cancel by subscription id. [Ok true] on cancellation, [Ok false] if
    the subscription was already cancelled (idempotent — a retried
    cancellation is not an error), [Error (Unknown_subscription _)] for
    ids never issued in this namespace (including another tenant's). *)

val drop_subscriber : t -> ?ns:string -> string -> int
(** Cancel all of a subscriber's subscriptions; returns how many. *)

val subscription_id : subscription -> int
(** The broker-assigned id (dense from 0 across all namespaces, never
    reused) — the id wire clients cancel by, stable across WAL/snapshot
    recovery (unlike engine sids, which renumber). *)

val subscriber_of : subscription -> string
val ns_of : subscription -> string
val expression_of : subscription -> Pf_xpath.Ast.path

val find_subscription : t -> ?ns:string -> int -> subscription option

val is_suppressed : t -> subscription -> bool
(** True while the subscription is redundant (covered by another active
    subscription of the same subscriber) and therefore not registered in
    the engine. *)

(** {1 Publishing} *)

type delivery = {
  subscriber : string;
  via : subscription list;
      (** the active subscriptions that matched, ascending id order *)
}

val publish : t -> ?ns:string -> Pf_xml.Tree.t -> delivery list
(** Deliveries for one document, one entry per matching subscriber of
    [ns], sorted by subscriber name. *)

val publish_string : t -> ?ns:string -> string -> delivery list
(** Parse then {!publish}. Raises {!Pf_xml.Sax.Parse_error}. *)

(** {1 The command/event state machine} *)

type command =
  | Subscribe of { ns : string; subscriber : string; expr : string }
  | Unsubscribe of { ns : string; id : int }
  | Drop_subscriber of { ns : string; subscriber : string }
  | Publish of { ns : string; doc : string }

type event =
  | Subscribed of { id : int; suppressed : bool }
  | Unsubscribed of { id : int; existed : bool }
  | Dropped of { count : int }
  | Delivered of { deliveries : (string * int list) list }
      (** (subscriber, matching subscription ids) pairs, subscribers
          sorted ascending, ids ascending *)
  | Failed of { error : Pf_intf.error }

val apply : t -> command -> event list
(** Execute one command; total — failures come back as [Failed], never as
    exceptions. Mutation commands ([Subscribe]/[Unsubscribe]/
    [Drop_subscriber]) that do not fail are exactly the ones a durability
    layer must log; [Publish] never changes subscription state. *)

val is_mutation : command -> bool
(** True for the commands a write-ahead log records. *)

val pp_command : Format.formatter -> command -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Asynchronous delivery support}

    A wire server does not publish through {!apply} — it submits raw
    documents to a {!Pf_service} and maps the sids coming back on worker
    domains to deliveries. Subscription ids are never reused and the
    sid table is append-only, so the mapping is stable even when the
    subscription was cancelled after the document entered the pipeline
    (epoch ordering means the engine already decided whether the sid
    matches). *)

val deliveries_of_sids : t -> ns:string -> int list -> (string * int list) list
(** Map engine sids (as reported by the engine/service backing this
    broker) to [ns]-scoped (subscriber, subscription id) deliveries, in
    the {!event} [Delivered] shape. Pure — counters untouched. *)

val count_publish : t -> deliveries:int -> unit
(** Record one published document and its delivery count in the broker's
    metrics — the async path's counterpart of the accounting {!publish}
    does itself. *)

(** {1 Snapshots}

    A serializable image of the subscription state (not of delivery
    counters), for the durability layer: {!snapshot} under the broker
    lock, {!load_snapshot} into a freshly created broker on recovery,
    then replay the WAL tail through {!apply}. Engine sids renumber on
    load (the fresh engine assigns its own); subscription ids, namespaces
    and suppression state are preserved exactly. *)

type sub_record = {
  sr_id : int;
  sr_ns : string;
  sr_subscriber : string;
  sr_expr : string;  (** {!Pf_xpath.Parser.to_string} form, re-parsed on load *)
  sr_suppressed_by : int option;
}

type snapshot = {
  snap_next_id : int;
  snap_subs : sub_record list;  (** live subscriptions, ascending id *)
}

val snapshot : t -> snapshot

val load_snapshot : t -> snapshot -> unit
(** Raises [Invalid_argument] if the broker already holds subscriptions
    or the snapshot is internally inconsistent (unparsable expression,
    dangling suppression reference). *)

(** {1 Statistics} *)

type stats = {
  subscribers : int;
  subscriptions : int;  (** active + suppressed *)
  suppressed : int;
  engine_expressions : int;
  distinct_predicates : int;
  documents_published : int;
  deliveries : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val metrics : t -> Pf_obs.Registry.t
(** Metric registry (scope ["broker"]): counters ["documents_published"],
    ["deliveries"], ["covering_suppressions"], ["covers_probes"]
    (containment tests spent probing for covers) and ["promotions"]
    (suppressed subscriptions re-activated after their cover left); gauges
    ["subscriptions"] (Sum), ["suppressed"] (Sum) and
    ["engine_expressions"] (Sum) kept current on every mutation so they
    export to Prometheus alongside the wire server's [net_*] metrics.
    The merge policies are explicit: subscription populations add up
    across broker shards, unlike high-water marks. The underlying
    engine's registry is separate; reach it via the port or the
    process-wide {!Pf_obs.Registry.registries}. Debug events are logged
    on the [predfilter.broker] source. *)
