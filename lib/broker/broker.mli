(** A selective-dissemination broker on top of the filtering engine.

    The paper's motivating deployment (Section 1): subscribers register
    XPath expressions describing their interests; the broker filters each
    incoming XML document and reports which subscribers it must be
    delivered to, and through which subscriptions.

    Two system-level concerns the raw engine does not handle live here:

    - {e subscriber bookkeeping}: subscriptions are grouped per subscriber,
      can be cancelled individually or wholesale, and deliveries are
      aggregated per subscriber;
    - {e covering suppression} (built on {!Pf_core.Containment}): a new
      subscription that is covered by one the same subscriber already
      holds cannot change that subscriber's deliveries, so it is recorded
      but not registered in the engine; when the covering subscription is
      cancelled, its suppressed dependents are activated transparently.
      With the redundancy typical of large subscription populations this
      keeps the engine's expression count well below the subscription
      count (the broker's {!stats} reports both). *)

type t

type config = {
  variant : Pf_core.Expr_index.variant;
  attr_mode : Pf_core.Engine.attr_mode;
  dedup_paths : bool;
  covering_suppression : bool;
}

val default_config : config
(** Access-predicate variant, inline attributes, path dedup on, covering
    suppression on. *)

val create : ?config:config -> unit -> t

(** {1 Subscriptions} *)

type subscription
(** Handle to one registered subscription. *)

val subscribe : t -> subscriber:string -> string -> subscription
(** [subscribe t ~subscriber expr] parses and registers [expr].
    Raises {!Pf_xpath.Parser.Error} on bad syntax and
    {!Pf_core.Encoder.Unsupported} on unsupported constructs. *)

val subscribe_path : t -> subscriber:string -> Pf_xpath.Ast.path -> subscription

val unsubscribe : t -> subscription -> bool
(** Cancel one subscription; false if already cancelled. Suppressed
    dependents of a cancelled covering subscription are re-activated. *)

val drop_subscriber : t -> string -> int
(** Cancel all of a subscriber's subscriptions; returns how many. *)

val subscriber_of : subscription -> string
val expression_of : subscription -> Pf_xpath.Ast.path
val is_suppressed : t -> subscription -> bool
(** True while the subscription is redundant (covered by another active
    subscription of the same subscriber) and therefore not registered in
    the engine. *)

(** {1 Publishing} *)

type delivery = {
  subscriber : string;
  via : subscription list;  (** the active subscriptions that matched *)
}

val publish : t -> Pf_xml.Tree.t -> delivery list
(** Deliveries for one document, one entry per matching subscriber,
    sorted by subscriber name. *)

val publish_string : t -> string -> delivery list
(** Parse then {!publish}. Raises {!Pf_xml.Sax.Parse_error}. *)

(** {1 Statistics} *)

type stats = {
  subscribers : int;
  subscriptions : int;  (** active + suppressed *)
  suppressed : int;
  engine_expressions : int;
  distinct_predicates : int;
  documents_published : int;
  deliveries : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val metrics : t -> Pf_obs.Registry.t
(** Metric registry (scope ["broker"]): counters ["documents_published"],
    ["deliveries"] and ["covering_suppressions"]. The underlying engine's
    registry is separate; reach it via {!Pf_core.Engine.metrics} or the
    process-wide {!Pf_obs.Registry.registries}. Debug events are logged on
    the [predfilter.broker] source. *)
