(* The unified engine signature (see the mli for the contract), the shared
   rejection exception, and the brute-force reference implementation. *)

exception Unsupported of string

type error =
  | Bad_expression of string
  | Unsupported_expression of string
  | Unknown_subscription of int
  | Bad_document of string
  | Protocol_error of string

let error_message = function
  | Bad_expression msg -> Printf.sprintf "bad expression: %s" msg
  | Unsupported_expression msg -> Printf.sprintf "unsupported expression: %s" msg
  | Unknown_subscription id -> Printf.sprintf "unknown subscription %d" id
  | Bad_document msg -> Printf.sprintf "bad document: %s" msg
  | Protocol_error msg -> Printf.sprintf "protocol error: %s" msg

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

module type FILTER = sig
  type t

  val create : unit -> t
  val add : t -> Pf_xpath.Ast.path -> int
  val add_string : t -> string -> int
  val remove : t -> int -> bool
  val match_document : t -> Pf_xml.Tree.t -> int list
  val match_string : t -> string -> int list
  val match_batch : t -> Pf_xml.Tree.t list -> int list list
  val match_string_batch : t -> string list -> int list list
  val metrics : t -> Pf_obs.Registry.t
end

type filter = (module FILTER)

module Reference = struct
  type entry = { path : Pf_xpath.Ast.path; mutable active : bool }

  type t = {
    mutable exprs : entry array;
    mutable n_exprs : int;
    registry : Pf_obs.Registry.t;
    documents : Pf_obs.Counter.t;
    matched : Pf_obs.Counter.t;
  }

  let create () =
    (* unlisted: the oracle runs inside test harnesses, where polluting the
       global export list with one registry per fuzz case helps nobody *)
    let registry = Pf_obs.Registry.create ~list:false "reference" in
    {
      exprs = [||];
      n_exprs = 0;
      registry;
      documents = Pf_obs.Counter.make ~registry "documents" ~help:"documents processed";
      matched = Pf_obs.Counter.make ~registry "matches" ~help:"expression matches reported";
    }

  let add t path =
    if t.n_exprs >= Array.length t.exprs then begin
      let bigger =
        Array.make (max 16 (2 * Array.length t.exprs)) { path; active = false }
      in
      Array.blit t.exprs 0 bigger 0 t.n_exprs;
      t.exprs <- bigger
    end;
    let sid = t.n_exprs in
    t.exprs.(sid) <- { path; active = true };
    t.n_exprs <- sid + 1;
    sid

  let add_string t s = add t (Pf_xpath.Parser.parse s)

  let remove t sid =
    if sid < 0 || sid >= t.n_exprs || not t.exprs.(sid).active then false
    else begin
      t.exprs.(sid).active <- false;
      true
    end

  let match_document t doc =
    Pf_obs.Counter.incr t.documents;
    let matches = ref [] in
    for sid = t.n_exprs - 1 downto 0 do
      let e = t.exprs.(sid) in
      if e.active && Pf_xpath.Eval.matches e.path doc then matches := sid :: !matches
    done;
    Pf_obs.Counter.add t.matched (List.length !matches);
    !matches

  let match_string t s = match_document t (Pf_xml.Sax.parse_document s)
  let match_batch t docs = List.map (match_document t) docs
  let match_string_batch t srcs = List.map (match_string t) srcs
  let metrics t = t.registry
end
