(** The unified engine signature.

    Every filtering implementation in the repository — the predicate engine
    of the paper, the YFilter and Index-Filter baselines, and the reference
    evaluator — satisfies {!FILTER}: a stateful collection of XPath
    expressions that matches whole documents and reports the sorted sids of
    the matching expressions. Generic layers (the differential-testing
    roster, the benchmark harness, the domain-parallel {!Pf_service}) are
    written once against this signature and take engines as first-class
    [(module FILTER)] values.

    The contract every implementation honours:

    - [add] assigns sids densely from 0 in registration order, so two
      instances fed the same add sequence agree on every sid — the property
      the sharded service relies on to keep replicas aligned;
    - [match_document] returns sids sorted ascending, each at most once,
      and never reports a removed sid;
    - expressions outside the engine's supported subset are rejected with
      {!Unsupported} (never a bare [Invalid_argument]), and rejection
      leaves the engine unchanged;
    - engines are single-domain values: no instance is accessed from two
      domains at once (replication, not sharing, is the concurrency
      story). *)

exception Unsupported of string
(** Raised by [add] (and [add_string]) when an expression is outside the
    implementation's supported subset — e.g. an attribute filter on a
    wildcard step for the predicate engine, or a nested path filter for
    the YFilter/Index-Filter baselines. {!Pf_core.Encoder.Unsupported} is
    this exception, re-exported, so one handler catches every engine. *)

(** Why a subscription-layer operation was refused. Shared by the broker's
    result-returning operations, its command/event state machine and the
    wire protocol's ERROR frames, so a transport maps failures to frames
    without exception-catching: the broker returns these, the codec
    round-trips them. *)
type error =
  | Bad_expression of string  (** XPath syntax error ({!Pf_xpath.Parser.Error}) *)
  | Unsupported_expression of string  (** outside the engine's subset ({!Unsupported}) *)
  | Unknown_subscription of int  (** no live subscription under this id *)
  | Bad_document of string  (** XML parse failure on a published document *)
  | Protocol_error of string  (** transport-level: malformed or out-of-order frame *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

module type FILTER = sig
  type t

  val create : unit -> t
  (** A fresh, empty engine instance. *)

  val add : t -> Pf_xpath.Ast.path -> int
  (** Register an expression; returns its sid (dense, starting at 0).
      Raises {!Unsupported} for expressions outside the supported subset. *)

  val add_string : t -> string -> int
  (** Parse then {!add}. Raises {!Pf_xpath.Parser.Error} on bad syntax. *)

  val remove : t -> int -> bool
  (** Unregister an expression. Returns [false] if the sid is unknown or
      was already removed; sids are never reused. *)

  val match_document : t -> Pf_xml.Tree.t -> int list
  (** Sids of all registered, not-removed expressions matched by the
      document, sorted ascending. *)

  val match_string : t -> string -> int list
  (** Parse the XML (raises {!Pf_xml.Sax.Parse_error}) then
      {!match_document}. *)

  val match_batch : t -> Pf_xml.Tree.t list -> int list list
  (** Match several documents in one call. Observationally equal to
      [List.map (match_document t)] — same match sets in the same order —
      but implementations may amortize shared work across the batch (the
      predicate engine runs its cache-flat predicate stage over a chunk of
      publications per pass; the service submits the whole batch through
      its pipeline). *)

  val match_string_batch : t -> string list -> int list list
  (** [match_batch] over serialized documents; equal to
      [List.map (match_string t)]. *)

  val metrics : t -> Pf_obs.Registry.t
  (** The instance's metric registry. *)
end

type filter = (module FILTER)
(** A first-class engine. Configured variants are built by per-engine
    constructors (e.g. {!Pf_core.Engine.filter}) that close the
    configuration into [create]. *)

module Reference : FILTER
(** The trivial implementation over the reference evaluator
    {!Pf_xpath.Eval}: every expression is stored verbatim and matched by
    brute force. Supports the full expression language; quadratic and
    slow, but it is the conformance oracle every other implementation
    must agree with. Its registry (scope ["reference"]) is unlisted and
    carries the ["documents"] and ["matches"] counters. *)
