(* Feature-weighted generators over the small adversarial world (tag
   alphabet a..e). Distributions follow the original property-test
   generators; each feature gate removes its construct entirely. *)

open QCheck2

type features = {
  wildcards : bool;
  descendants : bool;
  attrs : bool;
  nested : bool;
  text : bool;
}

let all_features =
  { wildcards = true; descendants = true; attrs = true; nested = true; text = true }

let structure_only =
  { wildcards = false; descendants = false; attrs = false; nested = false; text = false }

let structure_axes = { structure_only with wildcards = true; descendants = true }

let feature_names =
  [
    ("wildcards", (fun f -> f.wildcards), fun f -> { f with wildcards = true });
    ("descendants", (fun f -> f.descendants), fun f -> { f with descendants = true });
    ("attrs", (fun f -> f.attrs), fun f -> { f with attrs = true });
    ("nested", (fun f -> f.nested), fun f -> { f with nested = true });
    ("text", (fun f -> f.text), fun f -> { f with text = true });
  ]

let features_to_string f =
  match List.filter_map (fun (n, get, _) -> if get f then Some n else None) feature_names with
  | [] -> "none"
  | names -> String.concat "," names

let features_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> Ok all_features
  | "none" | "structure" -> Ok structure_only
  | s ->
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ -> acc
        | Ok f -> (
          match List.find_opt (fun (n, _, _) -> n = part) feature_names with
          | Some (_, _, set) -> Ok (set f)
          | None ->
            Error
              (Printf.sprintf "unknown feature %S (expected %s)" part
                 (String.concat ", " (List.map (fun (n, _, _) -> n) feature_names)))))
      (Ok structure_only) parts

type doc_shape = { min_depth : int; max_depth : int; max_fanout : int }

let default_shape = { min_depth = 1; max_depth = 5; max_fanout = 3 }
let deep_shape = { min_depth = 6; max_depth = 12; max_fanout = 2 }

let tag_gen = Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ]
let attr_name_gen = Gen.oneofl [ "x"; "y"; "z" ]
let attr_value_gen = Gen.map string_of_int (Gen.int_range 0 5)

(* ------------------------------------------------------------------ *)
(* Documents *)

let rec element_body (f : features) ~depth ~fanout =
  let open Gen in
  tag_gen >>= fun tag ->
  (if f.attrs then
     list_size (int_range 0 2) (pair attr_name_gen attr_value_gen)
     >|= List.sort_uniq (fun (a, _) (b, _) -> compare a b)
   else return [])
  >>= fun attrs ->
  (if depth <= 1 then return []
   else
     list_size (int_range 0 fanout)
       (map (fun e -> Pf_xml.Tree.Element e) (element_body f ~depth:(depth - 1) ~fanout)))
  >>= fun children ->
  (* leaf elements may carry numeric text, exercising text() filters;
     leaves only, so streaming and tree path extraction agree exactly *)
  (if children = [] && f.text then
     frequency
       [ (2, return children);
         (1, map (fun v -> [ Pf_xml.Tree.Text (string_of_int v) ]) (int_range 0 5)) ]
   else return children)
  >>= fun children -> return (Pf_xml.Tree.element ~attrs ~children tag)

let element_gen ?(shape = default_shape) f =
  Gen.(
    int_range shape.min_depth shape.max_depth >>= fun depth ->
    element_body f ~depth ~fanout:shape.max_fanout)

let doc_gen ?shape f = Gen.map Pf_xml.Tree.doc (element_gen ?shape f)

let doc_print d = Pf_xml.Print.to_string ~decl:false d

(* ------------------------------------------------------------------ *)
(* XPath expressions *)

let comparison_gen = Gen.oneofl Pf_xpath.Ast.[ Eq; Ne; Lt; Le; Gt; Ge ]

let attr_filter_gen (f : features) =
  let open Gen in
  (if f.text then frequency [ (3, attr_name_gen); (1, return Pf_xpath.Ast.text_attr) ]
   else attr_name_gen)
  >>= fun attr ->
  comparison_gen >>= fun cmp ->
  int_range 0 5 >>= fun v ->
  return (Pf_xpath.Ast.Attr { Pf_xpath.Ast.attr; cmp; value = Pf_xpath.Ast.Int v })

let axis_gen (f : features) =
  if f.descendants then Gen.oneofl Pf_xpath.Ast.[ Child; Child; Child; Descendant ]
  else Gen.return Pf_xpath.Ast.Child

let test_gen (f : features) =
  if f.wildcards then
    Gen.frequency
      [ (4, Gen.map (fun t -> Pf_xpath.Ast.Tag t) tag_gen);
        (1, Gen.return Pf_xpath.Ast.Wildcard) ]
  else Gen.map (fun t -> Pf_xpath.Ast.Tag t) tag_gen

let rec step_gen (f : features) ~nested_depth =
  let open Gen in
  axis_gen f >>= fun axis ->
  test_gen f >>= fun test ->
  (match test with
  | Pf_xpath.Ast.Wildcard -> return []
  | Pf_xpath.Ast.Tag _ when f.attrs || (f.nested && nested_depth > 0) ->
    let freqs = if f.attrs then [ (3, attr_filter_gen f) ] else [] in
    let freqs =
      if f.nested && nested_depth > 0 then
        ( 1,
          map
            (fun p -> Pf_xpath.Ast.Nested p)
            (relative_path_gen f ~nested_depth:(nested_depth - 1)) )
        :: freqs
      else freqs
    in
    list_size (int_range 0 1) (frequency freqs)
  | Pf_xpath.Ast.Tag _ -> return [])
  >>= fun filters -> return { Pf_xpath.Ast.axis; test; filters }

and relative_path_gen f ~nested_depth =
  let open Gen in
  list_size (int_range 1 3) (step_gen f ~nested_depth) >>= fun steps ->
  return { Pf_xpath.Ast.absolute = false; steps }

let path_gen ?(max_steps = 5) ?(nested_depth = 2) (f : features) =
  let open Gen in
  (if f.descendants then bool else return true) >>= fun absolute ->
  let nested_depth = if f.nested then nested_depth else 0 in
  list_size (int_range 1 max_steps) (step_gen f ~nested_depth) >>= fun steps ->
  return { Pf_xpath.Ast.absolute; steps }

let path_print p = Pf_xpath.Parser.to_string p
