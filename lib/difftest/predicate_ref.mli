(** The pre-rewrite, list-slot predicate index — a test-only reference.

    This is the predicate index as it stood before the cache-flat rewrite
    of {!Pf_core.Predicate_index}: per-operator vectors of pid lists
    indexed by predicate value, per-symbol hashtables for relative
    dispatch. It is kept verbatim (modulo two micro-cleanups the rewrite
    subsumed) so equivalence properties can check the flat implementation
    against it — same pids, same occurrence pairs in the same order, same
    probe/hit counter totals — under random predicate sets, documents and
    re-interning churn. Not exported outside the test universe; never use
    it on a hot path. *)

type pid = int

type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }

val make_metrics : ?registry:Pf_obs.Registry.t -> unit -> metrics

type t

val create : ?metrics:metrics -> unit -> t
val intern : t -> Pf_core.Predicate.t -> pid
val find : t -> Pf_core.Predicate.t -> pid option
val predicate : t -> pid -> Pf_core.Predicate.t
val size : t -> int

type results

val create_results : unit -> results
val run : t -> results -> Pf_core.Publication.t -> unit

val get : results -> pid -> (int * int) list
(** Pairs newest-first, like {!Pf_core.Predicate_index.get}. *)

val get_packed : results -> pid -> int list
val iter_pairs : results -> pid -> (int -> unit) -> unit
val is_matched : results -> pid -> bool
val matched_count : results -> int
val pack : int -> int -> int
val packed_first : int -> int
val packed_second : int -> int
