(** Feature-weighted random generation over a small adversarial world.

    The DTD-driven generators ({!Pf_workload.Xpath_gen}, {!Pf_workload.Xml_gen})
    produce realistic workloads; this module produces {e adversarial} ones: a
    deliberately tiny tag alphabet ([a..e]) maximizes tag collisions, so
    repeated tags on one path exercise occurrence numbers and overlapping
    query fragments exercise predicate sharing. The QCheck property suites
    and the differential fuzzing harness both draw from these generators, so
    the generation logic lives in one place.

    Every generator is gated by a {!features} record: a disabled feature is
    guaranteed absent from the output, which lets the fuzzer isolate the
    engine code paths a divergence depends on. *)

type features = {
  wildcards : bool;  (** [*] node tests *)
  descendants : bool;  (** [//] axes (and relative, non-absolute paths) *)
  attrs : bool;  (** attribute filters on steps / attributes on elements *)
  nested : bool;  (** nested path filters [\[p\]] *)
  text : bool;  (** [text()] filters / text content on leaf elements *)
}

val all_features : features
val structure_only : features
(** Only tags and child axes: no wildcards, descendants, filters or text. *)

val structure_axes : features
(** Wildcards and descendants, but no filters, no nesting, no text — the
    single-path structural subset. *)

val features_to_string : features -> string
(** Comma-separated enabled feature names, ["none"] when all disabled. *)

val features_of_string : string -> (features, string) result
(** Parses ["all"], ["none"]/["structure"], or a comma-separated subset of
    [wildcards,descendants,attrs,nested,text]. *)

type doc_shape = {
  min_depth : int;
  max_depth : int;
  max_fanout : int;
}

val default_shape : doc_shape
(** Depth 1–5, fanout ≤ 3 — the historical property-test shape. *)

val deep_shape : doc_shape
(** Deep and narrow: depth 6–12, fanout ≤ 2 — stresses long occurrence
    chains and descendant-axis matching. *)

val tag_gen : string QCheck2.Gen.t
val attr_name_gen : string QCheck2.Gen.t
val attr_value_gen : string QCheck2.Gen.t

val element_gen : ?shape:doc_shape -> features -> Pf_xml.Tree.element QCheck2.Gen.t
val doc_gen : ?shape:doc_shape -> features -> Pf_xml.Tree.t QCheck2.Gen.t
(** Random documents. Attributes appear only when [features.attrs], numeric
    leaf text only when [features.text] (leaves only, so streaming and tree
    path extraction agree exactly). *)

val path_gen :
  ?max_steps:int -> ?nested_depth:int -> features -> Pf_xpath.Ast.path QCheck2.Gen.t
(** Random XPath expressions over the same alphabet. Wildcard steps never
    carry filters (the engine's supported subset). [nested_depth] (default 2)
    bounds nested-filter recursion and only applies when [features.nested]. *)

val doc_print : Pf_xml.Tree.t -> string
val path_print : Pf_xpath.Ast.path -> string
