open Pf_xpath

(* ------------------------------------------------------------------ *)
(* Expression reductions *)

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let replace_nth l n x = List.mapi (fun i y -> if i = n then x else y) l

let rec path_reductions (p : Ast.path) : Ast.path list =
  let n = List.length p.Ast.steps in
  (* remove one step *)
  let drops =
    if n <= 1 then []
    else List.init n (fun i -> { p with Ast.steps = remove_nth p.Ast.steps i })
  in
  (* per-step reductions *)
  let steps =
    List.concat
      (List.mapi
         (fun i (s : Ast.step) ->
           List.map
             (fun s' -> { p with Ast.steps = replace_nth p.Ast.steps i s' })
             (step_reductions s))
         p.Ast.steps)
  in
  drops @ steps

and step_reductions (s : Ast.step) : Ast.step list =
  let nf = List.length s.Ast.filters in
  (* strip one filter *)
  let strip = List.init nf (fun i -> { s with Ast.filters = remove_nth s.Ast.filters i }) in
  (* shrink a nested filter in place *)
  let shrink_nested =
    List.concat
      (List.mapi
         (fun i f ->
           match f with
           | Ast.Attr _ -> []
           | Ast.Nested q ->
             List.map
               (fun q' ->
                 { s with Ast.filters = replace_nth s.Ast.filters i (Ast.Nested q') })
               (path_reductions q))
         s.Ast.filters)
  in
  (* weaken the axis *)
  let axis =
    match s.Ast.axis with
    | Ast.Descendant -> [ { s with Ast.axis = Ast.Child } ]
    | Ast.Child -> []
  in
  strip @ axis @ shrink_nested

(* ------------------------------------------------------------------ *)
(* Document reductions *)

let rec element_reductions (e : Pf_xml.Tree.element) : Pf_xml.Tree.element list =
  let nc = List.length e.Pf_xml.Tree.children in
  (* prune: remove one child node (element or text) *)
  let prune =
    List.init nc (fun i -> { e with Pf_xml.Tree.children = remove_nth e.Pf_xml.Tree.children i })
  in
  (* splice: replace a child element by its own children *)
  let splice =
    List.concat
      (List.mapi
         (fun i c ->
           match c with
           | Pf_xml.Tree.Text _ -> []
           | Pf_xml.Tree.Element child when child.Pf_xml.Tree.children <> [] ->
             [ { e with
                 Pf_xml.Tree.children =
                   List.concat
                     (List.mapi
                        (fun j c' -> if j = i then child.Pf_xml.Tree.children else [ c' ])
                        e.Pf_xml.Tree.children);
               } ]
           | Pf_xml.Tree.Element _ -> [])
         e.Pf_xml.Tree.children)
  in
  (* drop one attribute *)
  let na = List.length e.Pf_xml.Tree.attrs in
  let attrs =
    List.init na (fun i -> { e with Pf_xml.Tree.attrs = remove_nth e.Pf_xml.Tree.attrs i })
  in
  (* recurse into child elements *)
  let deep =
    List.concat
      (List.mapi
         (fun i c ->
           match c with
           | Pf_xml.Tree.Text _ -> []
           | Pf_xml.Tree.Element child ->
             List.map
               (fun child' ->
                 { e with
                   Pf_xml.Tree.children =
                     replace_nth e.Pf_xml.Tree.children i (Pf_xml.Tree.Element child');
                 })
               (element_reductions child))
         e.Pf_xml.Tree.children)
  in
  prune @ splice @ attrs @ deep

let doc_reductions (d : Pf_xml.Tree.t) : Pf_xml.Tree.t list =
  List.map (fun root -> { Pf_xml.Tree.root }) (element_reductions d.Pf_xml.Tree.root)

(* ------------------------------------------------------------------ *)
(* Greedy minimization *)

let array_remove a i =
  Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list a))

let array_replace a i x =
  let a' = Array.copy a in
  a'.(i) <- x;
  a'

let minimize ?(max_attempts = 20_000) ~failing exprs docs =
  let attempts = ref 0 in
  let steps = ref 0 in
  let try_ exprs docs =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      failing exprs docs
    end
  in
  let exprs = ref exprs and docs = ref docs in
  let progress = ref true in
  while !progress && !attempts < max_attempts do
    progress := false;
    (* 1. drop whole documents, then whole expressions (largest wins first) *)
    let i = ref 0 in
    while !i < Array.length !docs do
      if Array.length !docs > 1 && try_ !exprs (array_remove !docs !i) then begin
        docs := array_remove !docs !i;
        incr steps;
        progress := true
      end
      else incr i
    done;
    let i = ref 0 in
    while !i < Array.length !exprs do
      if Array.length !exprs > 1 && try_ (array_remove !exprs !i) !docs then begin
        exprs := array_remove !exprs !i;
        incr steps;
        progress := true
      end
      else incr i
    done;
    (* 2. reduce each expression in place *)
    Array.iteri
      (fun i e ->
        let rec go e =
          match
            List.find_opt
              (fun e' -> try_ (array_replace !exprs i e') !docs)
              (path_reductions e)
          with
          | Some e' ->
            exprs := array_replace !exprs i e';
            incr steps;
            progress := true;
            go e'
          | None -> ()
        in
        go e)
      !exprs;
    (* 3. reduce each document in place *)
    Array.iteri
      (fun i d ->
        let rec go d =
          match
            List.find_opt
              (fun d' -> try_ !exprs (array_replace !docs i d'))
              (doc_reductions d)
          with
          | Some d' ->
            docs := array_replace !docs i d';
            incr steps;
            progress := true;
            go d'
          | None -> ()
        in
        go d)
      !docs
  done;
  (!exprs, !docs, !steps)
