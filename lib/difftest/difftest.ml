open Pf_workload

type config = {
  seed : int;
  cases : int;
  time_budget : float;
  worlds : string list;
  features : Feature_gen.features;
  max_exprs : int;
  max_docs : int;
  all_variants : bool;
  save_dir : string option;
}

let all_worlds = [ "nitf"; "psd"; "auction"; "small" ]

let default_config =
  {
    seed = 1;
    cases = 200;
    time_budget = 0.;
    worlds = all_worlds;
    features = Feature_gen.all_features;
    max_exprs = 24;
    max_docs = 3;
    all_variants = false;
    save_dir = None;
  }

type divergence =
  | Mismatch of { engine : string; expr : int; doc : int; got : bool; want : bool }
  | Crash of { engine : string; error : string }
  | Stale_expectation of { expr : int; doc : int; stored : bool; oracle : bool }

let pp_divergence fmt = function
  | Mismatch { engine; expr; doc; got; want } ->
    Format.fprintf fmt "%s disagrees with eval on expr #%d x doc #%d: got %b, want %b"
      engine expr doc got want
  | Crash { engine; error } -> Format.fprintf fmt "%s crashed: %s" engine error
  | Stale_expectation { expr; doc; stored; oracle } ->
    Format.fprintf fmt
      "stored expectation for expr #%d x doc #%d is %b but the oracle says %b" expr doc
      stored oracle

let divergence_to_string d = Format.asprintf "%a" pp_divergence d

type divergence_report = {
  case_index : int;
  world : string;
  divergences : divergence list;
  shrunk : Case.t;
  shrink_steps : int;
  saved_to : string option;
}

type report = {
  cases_run : int;
  failures : divergence_report list;
  elapsed_ms : float;
  engine_ms : (string * float) list;
}

let metrics = Pf_obs.Registry.create "difftest"

let m_cases = Pf_obs.Counter.make ~registry:metrics "cases" ~help:"fuzz cases executed"

let m_divergences =
  Pf_obs.Counter.make ~registry:metrics "divergences"
    ~help:"engine-vs-oracle mismatches found (pre-shrink)"

let m_crashes =
  Pf_obs.Counter.make ~registry:metrics "crashes" ~help:"engine crashes found"

let m_shrink_steps =
  Pf_obs.Counter.make ~registry:metrics "shrink_steps"
    ~help:"successful counterexample reduction steps"

let m_saved =
  Pf_obs.Counter.make ~registry:metrics "cases_saved"
    ~help:"shrunk cases written to the corpus directory"

(* ------------------------------------------------------------------ *)
(* Running the roster and comparing *)

let check_timed ?times ~engines exprs docs =
  let time ename f =
    match times with
    | None -> f ()
    | Some tbl ->
      let t0 = Pf_obs.Registry.now_ns () in
      Fun.protect f ~finally:(fun () ->
          let ms = Int64.to_float (Int64.sub (Pf_obs.Registry.now_ns ()) t0) /. 1e6 in
          let prev = try Hashtbl.find tbl ename with Not_found -> 0. in
          Hashtbl.replace tbl ename (prev +. ms))
  in
  let run (eng : Engines.engine) =
    let supported = Array.map eng.Engines.supports exprs in
    match time eng.Engines.ename (fun () -> Engines.run eng exprs supported docs) with
    | matrix -> Ok (supported, matrix)
    | exception exn -> Error (Printexc.to_string exn)
  in
  match engines with
  | [] -> invalid_arg "Difftest.check: empty engine roster"
  | oracle :: rest -> (
    match run oracle with
    | Error error -> [ Crash { engine = oracle.Engines.ename; error } ]
    | Ok (_, want) ->
      List.concat_map
        (fun (eng : Engines.engine) ->
          match run eng with
          | Error error -> [ Crash { engine = eng.Engines.ename; error } ]
          | Ok (supported, got) ->
            let divs = ref [] in
            Array.iteri
              (fun i row ->
                if supported.(i) then
                  Array.iteri
                    (fun j g ->
                      if g <> want.(i).(j) then
                        divs :=
                          Mismatch
                            { engine = eng.Engines.ename;
                              expr = i;
                              doc = j;
                              got = g;
                              want = want.(i).(j);
                            }
                          :: !divs)
                    row)
              got;
            List.rev !divs)
        rest)

let check ~engines exprs docs = check_timed ~engines exprs docs

let check_case ?(all_variants = false) (c : Case.t) =
  let engines =
    if all_variants then Engines.extended_roster () else Engines.default_roster ()
  in
  let stale = ref [] in
  Array.iteri
    (fun i e ->
      Array.iteri
        (fun j d ->
          let oracle = Pf_xpath.Eval.matches e d in
          if oracle <> c.Case.expect.(i).(j) then
            stale :=
              Stale_expectation { expr = i; doc = j; stored = c.Case.expect.(i).(j); oracle }
              :: !stale)
        c.Case.docs)
    c.Case.exprs;
  List.rev !stale @ check ~engines c.Case.exprs c.Case.docs

(* ------------------------------------------------------------------ *)
(* Workload generation *)

let gen_small rng (cfg : config) =
  let n_exprs = 1 + Random.State.int rng cfg.max_exprs in
  let n_docs = 1 + Random.State.int rng cfg.max_docs in
  let shape =
    if Random.State.bool rng then Feature_gen.default_shape else Feature_gen.deep_shape
  in
  let doc_gen = Feature_gen.doc_gen ~shape cfg.features in
  let path_gen = Feature_gen.path_gen cfg.features in
  let exprs = List.init n_exprs (fun _ -> QCheck2.Gen.generate1 ~rand:rng path_gen) in
  let docs = List.init n_docs (fun _ -> QCheck2.Gen.generate1 ~rand:rng doc_gen) in
  (exprs, docs)

let gen_dtd rng world (cfg : config) =
  let dtd =
    match Dtd.by_name world with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Difftest: unknown world %S" world)
  in
  let f = cfg.features in
  let n_exprs = 1 + Random.State.int rng cfg.max_exprs in
  let n_docs = 1 + Random.State.int rng cfg.max_docs in
  let query_params =
    {
      Xpath_gen.count = n_exprs;
      max_depth = 3 + Random.State.int rng 4;
      wildcard_prob = (if f.Feature_gen.wildcards then Random.State.float rng 0.5 else 0.);
      descendant_prob =
        (if f.Feature_gen.descendants then Random.State.float rng 0.5 else 0.);
      distinct = false;
      filters_per_path = (if f.Feature_gen.attrs then Random.State.int rng 3 else 0);
      nested_prob = (if f.Feature_gen.nested then Random.State.float rng 0.4 else 0.);
      seed = Random.State.bits rng;
    }
  in
  let preset = Presets.documents_for world in
  let doc_params =
    {
      preset with
      Xml_gen.max_levels = 3 + Random.State.int rng 6;
      text_prob = (if f.Feature_gen.text then 0.3 else preset.Xml_gen.text_prob);
      seed = Random.State.bits rng;
    }
  in
  let exprs = Xpath_gen.generate dtd query_params in
  let exprs = if exprs = [] then [ Pf_xpath.Parser.parse ("/" ^ dtd.Dtd.root) ] else exprs in
  (exprs, Xml_gen.generate_many dtd doc_params n_docs)

let generate rng world cfg =
  if world = "small" then gen_small rng cfg else gen_dtd rng world cfg

(* ------------------------------------------------------------------ *)
(* The fuzz loop *)

let run ?(log = ignore) (cfg : config) =
  let engines =
    if cfg.all_variants then Engines.extended_roster () else Engines.default_roster ()
  in
  let times = Hashtbl.create 8 in
  let t0 = Pf_obs.Registry.now_ns () in
  let elapsed_ms () = Int64.to_float (Int64.sub (Pf_obs.Registry.now_ns ()) t0) /. 1e6 in
  let worlds = if cfg.worlds = [] then all_worlds else cfg.worlds in
  let failures = ref [] in
  let cases_run = ref 0 in
  (try
     for i = 0 to cfg.cases - 1 do
       if cfg.time_budget > 0. && elapsed_ms () > cfg.time_budget *. 1000. then raise Exit;
       let world = List.nth worlds (i mod List.length worlds) in
       let rng = Random.State.make [| cfg.seed; i; 0xd1ff7e57 |] in
       let exprs, docs = generate rng world cfg in
       let exprs = Array.of_list exprs and docs = Array.of_list docs in
       incr cases_run;
       Pf_obs.Counter.incr m_cases;
       let divergences = check_timed ~times ~engines exprs docs in
       if divergences <> [] then begin
         List.iter
           (fun d ->
             (match d with
             | Crash _ -> Pf_obs.Counter.incr m_crashes
             | Mismatch _ | Stale_expectation _ -> Pf_obs.Counter.incr m_divergences);
             log
               (Printf.sprintf "case %d (%s, seed %d): %s" i world cfg.seed
                  (divergence_to_string d)))
           divergences;
         let failing es ds =
           Array.length es > 0 && Array.length ds > 0 && check ~engines es ds <> []
         in
         let shrunk_exprs, shrunk_docs, shrink_steps =
           Shrink.minimize ~failing exprs docs
         in
         Pf_obs.Counter.add m_shrink_steps shrink_steps;
         let name = Printf.sprintf "seed%d-case%04d-%s" cfg.seed i world in
         let notes =
           Printf.sprintf
             "found by pf_fuzz: seed %d, case %d, world %s, features %s (%d shrink steps)"
             cfg.seed i world
             (Feature_gen.features_to_string cfg.features)
             shrink_steps
           :: List.map divergence_to_string divergences
         in
         let shrunk =
           Case.make ~name ~notes ~exprs:(Array.to_list shrunk_exprs)
             ~docs:(Array.to_list shrunk_docs) ()
         in
         let saved_to =
           Option.map
             (fun dir ->
               Pf_obs.Counter.incr m_saved;
               let path = Case.save ~dir shrunk in
               log (Printf.sprintf "case %d: shrunk reproducer saved to %s" i path);
               path)
             cfg.save_dir
         in
         failures :=
           { case_index = i; world; divergences; shrunk; shrink_steps; saved_to }
           :: !failures
       end
     done
   with Exit -> log "time budget exhausted, stopping early");
  let engine_ms =
    List.map
      (fun (eng : Engines.engine) ->
        (eng.Engines.ename, try Hashtbl.find times eng.Engines.ename with Not_found -> 0.))
      engines
  in
  {
    cases_run = !cases_run;
    failures = List.rev !failures;
    elapsed_ms = elapsed_ms ();
    engine_ms;
  }

(* ------------------------------------------------------------------ *)
(* JSON summary *)

let report_json (cfg : config) (r : report) =
  let open Pf_obs.Json in
  let n_crashes =
    List.fold_left
      (fun acc f ->
        acc
        + List.length (List.filter (function Crash _ -> true | _ -> false) f.divergences))
      0 r.failures
  in
  let n_mismatches =
    List.fold_left
      (fun acc f ->
        acc
        + List.length
            (List.filter (function Mismatch _ | Stale_expectation _ -> true | _ -> false)
               f.divergences))
      0 r.failures
  in
  Obj
    [
      ("tool", String "pf_fuzz");
      ("seed", Int cfg.seed);
      ("cases_requested", Int cfg.cases);
      ("cases_run", Int r.cases_run);
      ("worlds", List (List.map (fun w -> String w) cfg.worlds));
      ("features", String (Feature_gen.features_to_string cfg.features));
      ("all_variants", Bool cfg.all_variants);
      ("divergent_cases", Int (List.length r.failures));
      ("mismatches", Int n_mismatches);
      ("crashes", Int n_crashes);
      ( "shrink_steps",
        Int (List.fold_left (fun acc f -> acc + f.shrink_steps) 0 r.failures) );
      ("elapsed_ms", Float r.elapsed_ms);
      ("engine_ms", Obj (List.map (fun (n, ms) -> (n, Float ms)) r.engine_ms));
      ( "failures",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("case_index", Int f.case_index);
                   ("world", String f.world);
                   ("shrink_steps", Int f.shrink_steps);
                   ( "divergences",
                     List (List.map (fun d -> String (divergence_to_string d)) f.divergences)
                   );
                   ( "saved_to",
                     match f.saved_to with None -> Null | Some p -> String p );
                   ("case", String (Case.to_string f.shrunk));
                 ])
             r.failures) );
    ]
