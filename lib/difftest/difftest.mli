(** Cross-engine differential fuzzing.

    The paper's central correctness claim is that the predicate engine, the
    nested decomposition, YFilter and Index-Filter compute the {e same}
    match sets and differ only in cost. This module turns the reference
    evaluator ({!Pf_xpath.Eval}, "the correctness oracle") into continuous
    tooling: a seeded loop generates random (world, document set, XPE set)
    workloads, runs every engine in the roster on identical inputs and
    reports any pairwise divergence or crash. A divergence is shrunk to a
    minimal reproducer ({!Shrink}) and can be serialized as a replayable
    {!Case} for the committed regression corpus. *)

type config = {
  seed : int;
  cases : int;  (** number of generated cases *)
  time_budget : float;  (** wall-clock seconds; [0.] = unlimited *)
  worlds : string list;  (** ["nitf"], ["psd"], ["auction"] (DTD-driven) and/or
                             ["small"] (adversarial small-alphabet world) *)
  features : Feature_gen.features;
  max_exprs : int;  (** expressions per case, drawn in [1..max_exprs] *)
  max_docs : int;  (** documents per case, drawn in [1..max_docs] *)
  all_variants : bool;  (** extended engine roster (adds engine-pc,
                            engine-shared-dedup, engine-stream) *)
  save_dir : string option;  (** write shrunk divergence cases here *)
}

val default_config : config
(** [seed = 1; cases = 200; time_budget = 0.; worlds = all four;
    features = all; max_exprs = 24; max_docs = 3; all_variants = false;
    save_dir = None]. *)

val all_worlds : string list

type divergence =
  | Mismatch of { engine : string; expr : int; doc : int; got : bool; want : bool }
      (** engine verdict differs from the oracle on (expr, doc) *)
  | Crash of { engine : string; error : string }
  | Stale_expectation of { expr : int; doc : int; stored : bool; oracle : bool }
      (** replay only: the oracle no longer agrees with the committed
          expectation matrix — the semantics drifted *)

val pp_divergence : Format.formatter -> divergence -> unit

type divergence_report = {
  case_index : int;
  world : string;
  divergences : divergence list;  (** on the original, unshrunk case *)
  shrunk : Case.t;  (** minimal reproducer (verdict matrix = oracle's) *)
  shrink_steps : int;
  saved_to : string option;
}

type report = {
  cases_run : int;
  failures : divergence_report list;
  elapsed_ms : float;
  engine_ms : (string * float) list;  (** cumulative per-engine run time *)
}

val metrics : Pf_obs.Registry.t
(** Listed registry (scope ["difftest"]): counters ["cases"],
    ["divergences"], ["crashes"], ["shrink_steps"], ["cases_saved"]. *)

val check :
  engines:Engines.engine list ->
  Pf_xpath.Ast.path array ->
  Pf_xml.Tree.t array ->
  divergence list
(** Run every engine on the inputs and compare against the first
    (the oracle). The oracle itself crashing is reported as a crash. *)

val check_case : ?all_variants:bool -> Case.t -> divergence list
(** Replay a corpus case: the recomputed oracle matrix must equal the
    stored expectations ({!Stale_expectation} otherwise) and every engine
    must agree with the oracle. *)

val run : ?log:(string -> unit) -> config -> report
(** The fuzzing loop. [log] receives one line per divergence and sparse
    progress output. Deterministic in [config.seed] (modulo [time_budget]
    truncation). *)

val report_json : config -> report -> Pf_obs.Json.t
(** Machine-readable summary: configuration echo, counts, per-engine
    timings and one entry per (shrunk) failure. *)
