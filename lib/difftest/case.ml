type t = {
  name : string;
  notes : string list;
  exprs : Pf_xpath.Ast.path array;
  docs : Pf_xml.Tree.t array;
  expect : bool array array;
}

(* A serialized document must stay on one line. Our printer only emits
   newlines inside character data or attribute values, where a numeric
   character reference is equivalent. *)
let one_line xml =
  if not (String.contains xml '\n') then xml
  else
    String.concat "&#10;" (String.split_on_char '\n' xml)

let doc_to_line d = one_line (Pf_xml.Print.to_string ~decl:false d)

let canonicalize_doc d = Pf_xml.Sax.parse_document (doc_to_line d)

(* The printer renders a relative path with a leading descendant step the
   same way as an absolute one ([//a] both ways) — semantically identical
   forms, but structurally distinct ASTs. Round-tripping here makes
   [to_string]/[of_string] exact. *)
let canonicalize_expr e = Pf_xpath.Parser.parse (Pf_xpath.Parser.to_string e)

let oracle_matrix exprs docs =
  Array.map
    (fun e -> Array.map (fun d -> Pf_xpath.Eval.matches e d) docs)
    exprs

let make ?(name = "case") ?(notes = []) ~exprs ~docs () =
  let exprs = Array.of_list (List.map canonicalize_expr exprs) in
  let docs = Array.of_list (List.map canonicalize_doc docs) in
  { name; notes; exprs; docs; expect = oracle_matrix exprs docs }

let to_string t =
  let buf = Buffer.create 512 in
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) t.notes;
  Array.iter
    (fun e -> Buffer.add_string buf ("expr " ^ Pf_xpath.Parser.to_string e ^ "\n"))
    t.exprs;
  Array.iter (fun d -> Buffer.add_string buf ("doc " ^ doc_to_line d ^ "\n")) t.docs;
  Array.iter
    (fun row ->
      Buffer.add_string buf "expect ";
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row;
      Buffer.add_char buf '\n')
    t.expect;
  Buffer.contents buf

let of_string ?(name = "case") src =
  let notes = ref [] and exprs = ref [] and docs = ref [] and expect = ref [] in
  let fail lineno msg = failwith (Printf.sprintf "%s:%d: %s" name lineno msg) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then
        notes := String.trim (String.sub line 1 (String.length line - 1)) :: !notes
      else
        match String.index_opt line ' ' with
        | None -> fail lineno (Printf.sprintf "malformed line %S" line)
        | Some sp -> (
          let key = String.sub line 0 sp in
          let rest = String.trim (String.sub line sp (String.length line - sp)) in
          match key with
          | "expr" -> (
            match Pf_xpath.Parser.parse rest with
            | p -> exprs := p :: !exprs
            | exception Pf_xpath.Parser.Error msg ->
              fail lineno (Printf.sprintf "bad expression %S: %s" rest msg))
          | "doc" -> (
            match Pf_xml.Sax.parse_document rest with
            | d -> docs := d :: !docs
            | exception Pf_xml.Sax.Parse_error (pos, msg) ->
              fail lineno
                (Format.asprintf "bad document: %s (%a)" msg Pf_xml.Sax.pp_position pos))
          | "expect" ->
            let row =
              Array.init (String.length rest) (fun j ->
                  match rest.[j] with
                  | '1' -> true
                  | '0' -> false
                  | c -> fail lineno (Printf.sprintf "bad expect digit %C" c))
            in
            expect := row :: !expect
          | key -> fail lineno (Printf.sprintf "unknown key %S" key)))
    (String.split_on_char '\n' src);
  let exprs = Array.of_list (List.rev !exprs)
  and docs = Array.of_list (List.rev !docs)
  and expect = Array.of_list (List.rev !expect) in
  if Array.length exprs = 0 then fail 0 "no expressions";
  if Array.length docs = 0 then fail 0 "no documents";
  if
    Array.length expect <> Array.length exprs
    || Array.exists (fun row -> Array.length row <> Array.length docs) expect
  then
    fail 0
      (Printf.sprintf "expectation matrix must be %d rows of %d columns"
         (Array.length exprs) (Array.length docs));
  { name; notes = List.rev !notes; exprs; docs; expect }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let save ~dir t =
  mkdir_p dir;
  let path = Filename.concat dir (t.name ^ ".case") in
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc;
  path

let load path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  of_string ~name src

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f -> load (Filename.concat dir f))

let equal a b =
  Array.length a.exprs = Array.length b.exprs
  && Array.length a.docs = Array.length b.docs
  && Array.for_all2 Pf_xpath.Ast.equal a.exprs b.exprs
  && Array.for_all2 Pf_xml.Tree.equal a.docs b.docs
  && a.expect = b.expect
