(** Self-contained differential-test cases.

    A case is a set of XPath expressions, a set of documents, and the
    oracle's verdict matrix at capture time. Cases serialize to a small
    line-oriented text format so a shrunk counterexample can be committed
    under [test/corpus/difftest/] and replayed deterministically by the
    [test_difftest] suite on every [dune runtest].

    Format (one item per line, [#] comment lines preserved as notes):
    {v
      # free-form provenance notes
      expr /a/b[@x = 1]
      doc <a><b x="1"/></a>
      doc <a><b x="2"/></a>
      expect 10
    v}
    One [expect] row per expression, one [0]/[1] column per document —
    the reference evaluator's verdict ([Pf_xpath.Eval.matches]). *)

type t = {
  name : string;
  notes : string list;  (** provenance comments, without the leading [# ] *)
  exprs : Pf_xpath.Ast.path array;
  docs : Pf_xml.Tree.t array;
  expect : bool array array;  (** [expect.(e).(d)] — oracle verdict *)
}

val make :
  ?name:string ->
  ?notes:string list ->
  exprs:Pf_xpath.Ast.path list ->
  docs:Pf_xml.Tree.t list ->
  unit ->
  t
(** Builds a case: expressions and documents are canonicalized through a
    print/parse round-trip (so the serialized form is exact) and the
    expectation matrix is computed with the reference evaluator. *)

val to_string : t -> string

val of_string : ?name:string -> string -> t
(** Raises [Failure] on a malformed case (bad XPath, bad XML, wrong
    expectation dimensions). *)

val save : dir:string -> t -> string
(** Write [<dir>/<name>.case] (creating [dir] if needed); returns the
    path. *)

val load : string -> t
(** Load one [.case] file; the case name is the file's basename. *)

val load_dir : string -> t list
(** All [*.case] files in a directory, sorted by name; [] if the directory
    does not exist. *)

val equal : t -> t -> bool
(** Structural equality of expressions, documents and expectations (names
    and notes ignored). *)
