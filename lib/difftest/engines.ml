open Pf_xpath

type engine = {
  ename : string;
  filter : Pf_intf.filter;
  supports : Ast.path -> bool;
}

(* The predicate engine rejects filters attached to wildcard steps
   (Pf_intf.Unsupported), recursively through nested paths. *)
let rec engine_subset (p : Ast.path) =
  List.for_all
    (fun (s : Ast.step) ->
      (match s.Ast.test with
      | Ast.Wildcard -> s.Ast.filters = []
      | Ast.Tag _ -> true)
      && List.for_all
           (function Ast.Nested q -> engine_subset q | Ast.Attr _ -> true)
           s.Ast.filters)
    p.Ast.steps

(* One runner serves the whole roster: build a fresh instance, register the
   supported expressions (sids are dense, in registration order), then turn
   each document's sorted sid list into per-expression booleans. *)
let run { filter = (module F); _ } exprs supported docs =
  let inst = F.create () in
  let sids = Array.make (Array.length exprs) (-1) in
  Array.iteri (fun i e -> if supported.(i) then sids.(i) <- F.add inst e) exprs;
  let per_doc =
    Array.map
      (fun d ->
        let matched = Hashtbl.create 16 in
        List.iter (fun sid -> Hashtbl.replace matched sid ()) (F.match_document inst d);
        matched)
      docs
  in
  Array.mapi
    (fun i _ ->
      Array.map (fun matched -> sids.(i) >= 0 && Hashtbl.mem matched sids.(i)) per_doc)
    exprs

let oracle =
  { ename = "eval"; filter = (module Pf_intf.Reference); supports = (fun _ -> true) }

let predicate_engine ~ename ?variant ?attr_mode ?dedup_paths ?stream () =
  {
    ename;
    filter =
      (Pf_core.Engine.filter ?variant ?attr_mode ?dedup_paths ?stream ()
        :> Pf_intf.filter);
    supports = engine_subset;
  }

let yfilter_engine =
  {
    ename = "yfilter";
    filter = (module Pf_yfilter.Yfilter);
    supports = Ast.is_single_path;
  }

let index_filter_engine =
  {
    ename = "index-filter";
    filter = (module Pf_indexfilter.Index_filter);
    supports = Ast.is_single_path;
  }

let default_roster () =
  [
    oracle;
    predicate_engine ~ename:"engine" ~variant:Pf_core.Expr_index.Access_predicate
      ~attr_mode:Pf_core.Engine.Inline ();
    predicate_engine ~ename:"engine-nested-sp" ~variant:Pf_core.Expr_index.Basic
      ~attr_mode:Pf_core.Engine.Postponed ();
    yfilter_engine;
    index_filter_engine;
  ]

let extended_roster () =
  default_roster ()
  @ [
      predicate_engine ~ename:"engine-pc" ~variant:Pf_core.Expr_index.Prefix_covering ();
      predicate_engine ~ename:"engine-shared-dedup" ~variant:Pf_core.Expr_index.Shared
        ~dedup_paths:true ();
      predicate_engine ~ename:"engine-stream" ~stream:true ();
    ]
