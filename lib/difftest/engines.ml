open Pf_xpath

type engine = {
  ename : string;
  supports : Ast.path -> bool;
  run : Ast.path array -> bool array -> Pf_xml.Tree.t array -> bool array array;
}

(* The predicate engine rejects filters attached to wildcard steps
   (Encoder.Unsupported), recursively through nested paths. *)
let rec engine_subset (p : Ast.path) =
  List.for_all
    (fun (s : Ast.step) ->
      (match s.Ast.test with
      | Ast.Wildcard -> s.Ast.filters = []
      | Ast.Tag _ -> true)
      && List.for_all
           (function Ast.Nested q -> engine_subset q | Ast.Attr _ -> true)
           s.Ast.filters)
    p.Ast.steps

let oracle =
  {
    ename = "eval";
    supports = (fun _ -> true);
    run =
      (fun exprs supported docs ->
        Array.mapi
          (fun i e ->
            if supported.(i) then Array.map (fun d -> Eval.matches e d) docs
            else Array.map (fun _ -> false) docs)
          exprs);
  }

(* Verdict matrix from a sid-based matcher: register supported expressions,
   then turn each document's sorted sid list into per-expression booleans. *)
let matrix_of_sids exprs supported docs ~add ~match_doc =
  let sids = Array.make (Array.length exprs) (-1) in
  Array.iteri (fun i e -> if supported.(i) then sids.(i) <- add e) exprs;
  let per_doc =
    Array.map
      (fun d ->
        let matched = Hashtbl.create 16 in
        List.iter (fun sid -> Hashtbl.replace matched sid ()) (match_doc d);
        matched)
      docs
  in
  Array.mapi
    (fun i _ ->
      Array.map
        (fun matched -> sids.(i) >= 0 && Hashtbl.mem matched sids.(i))
        per_doc)
    exprs

let predicate_engine ~ename ?variant ?attr_mode ?dedup_paths () =
  {
    ename;
    supports = engine_subset;
    run =
      (fun exprs supported docs ->
        let e = Pf_core.Engine.create ?variant ?attr_mode ?dedup_paths () in
        matrix_of_sids exprs supported docs
          ~add:(Pf_core.Engine.add e)
          ~match_doc:(Pf_core.Engine.match_document e));
  }

let streaming_engine =
  {
    ename = "engine-stream";
    supports = engine_subset;
    run =
      (fun exprs supported docs ->
        let e = Pf_core.Engine.create () in
        matrix_of_sids exprs supported docs
          ~add:(Pf_core.Engine.add e)
          ~match_doc:(fun d ->
            Pf_core.Engine.match_stream e (Pf_xml.Print.to_string ~decl:false d)));
  }

let yfilter_engine =
  {
    ename = "yfilter";
    supports = Ast.is_single_path;
    run =
      (fun exprs supported docs ->
        let y = Pf_yfilter.Yfilter.create () in
        matrix_of_sids exprs supported docs
          ~add:(Pf_yfilter.Yfilter.add y)
          ~match_doc:(Pf_yfilter.Yfilter.match_document y));
  }

let index_filter_engine =
  {
    ename = "index-filter";
    supports = Ast.is_single_path;
    run =
      (fun exprs supported docs ->
        let f = Pf_indexfilter.Index_filter.create () in
        matrix_of_sids exprs supported docs
          ~add:(Pf_indexfilter.Index_filter.add f)
          ~match_doc:(Pf_indexfilter.Index_filter.match_document f));
  }

let default_roster () =
  [
    oracle;
    predicate_engine ~ename:"engine" ~variant:Pf_core.Expr_index.Access_predicate
      ~attr_mode:Pf_core.Engine.Inline ();
    predicate_engine ~ename:"engine-nested-sp" ~variant:Pf_core.Expr_index.Basic
      ~attr_mode:Pf_core.Engine.Postponed ();
    yfilter_engine;
    index_filter_engine;
  ]

let extended_roster () =
  default_roster ()
  @ [
      predicate_engine ~ename:"engine-pc" ~variant:Pf_core.Expr_index.Prefix_covering ();
      predicate_engine ~ename:"engine-shared-dedup" ~variant:Pf_core.Expr_index.Shared
        ~dedup_paths:true ();
      streaming_engine;
    ]
