open Pf_xpath

type engine = {
  ename : string;
  filter : Pf_intf.filter;
  supports : Ast.path -> bool;
  finalize : unit -> unit;
}

(* The predicate engine rejects filters attached to wildcard steps
   (Pf_intf.Unsupported), recursively through nested paths. *)
let rec engine_subset (p : Ast.path) =
  List.for_all
    (fun (s : Ast.step) ->
      (match s.Ast.test with
      | Ast.Wildcard -> s.Ast.filters = []
      | Ast.Tag _ -> true)
      && List.for_all
           (function Ast.Nested q -> engine_subset q | Ast.Attr _ -> true)
           s.Ast.filters)
    p.Ast.steps

(* One runner serves the whole roster: build a fresh instance, register the
   supported expressions (sids are dense, in registration order), then turn
   each document's sorted sid list into per-expression booleans. *)
let run { filter = (module F); finalize; _ } exprs supported docs =
  (* finalize even on a crash: service-backed entries must not leak worker
     domains when the case is a reportable crash divergence *)
  Fun.protect ~finally:finalize (fun () ->
      let inst = F.create () in
      let sids = Array.make (Array.length exprs) (-1) in
      Array.iteri (fun i e -> if supported.(i) then sids.(i) <- F.add inst e) exprs;
      let per_doc =
        Array.map
          (fun d ->
            let matched = Hashtbl.create 16 in
            List.iter
              (fun sid -> Hashtbl.replace matched sid ())
              (F.match_document inst d);
            matched)
          docs
      in
      Array.mapi
        (fun i _ ->
          Array.map
            (fun matched -> sids.(i) >= 0 && Hashtbl.mem matched sids.(i))
            per_doc)
        exprs)

let oracle =
  {
    ename = "eval";
    filter = (module Pf_intf.Reference);
    supports = (fun _ -> true);
    finalize = ignore;
  }

let predicate_engine ~ename ?variant ?attr_mode ?dedup_paths ?path_cache ?stream () =
  {
    ename;
    filter =
      (Pf_core.Engine.filter ?variant ?attr_mode ?dedup_paths ?path_cache ?stream ()
        :> Pf_intf.filter);
    supports = engine_subset;
    finalize = ignore;
  }

(* Wrap a filter so every [match_document] first unsubscribes and
   re-subscribes a deterministic subset of the live expressions. External
   sids stay stable — the wrapper translates through a mapping, exactly
   like the service's global/local sid tables — so the runner's
   bookkeeping is untouched while the inner engine's subscription epoch
   (and with it any path-result cache) is churned between documents. A
   cache that survives an epoch bump, or an entry not recomputed after a
   re-add under a fresh internal sid, shows up as a divergence. *)
let churned (filter : Pf_intf.filter) : Pf_intf.filter =
  let (module F) = filter in
  (module struct
    type t = {
      inst : F.t;
      mutable docs : int;
      exprs : (int, Ast.path) Hashtbl.t;  (* external sid -> source *)
      fwd : (int, int) Hashtbl.t;  (* external -> internal sid *)
      rev : (int, int) Hashtbl.t;  (* internal -> external sid *)
      mutable next : int;
    }

    let create () =
      {
        inst = F.create ();
        docs = 0;
        exprs = Hashtbl.create 16;
        fwd = Hashtbl.create 16;
        rev = Hashtbl.create 16;
        next = 0;
      }

    let add t p =
      let internal = F.add t.inst p in
      let ext = t.next in
      t.next <- ext + 1;
      Hashtbl.replace t.exprs ext p;
      Hashtbl.replace t.fwd ext internal;
      Hashtbl.replace t.rev internal ext;
      ext

    let add_string t s = add t (Parser.parse s)

    let remove t ext =
      match Hashtbl.find_opt t.fwd ext with
      | None -> false
      | Some internal ->
        let ok = F.remove t.inst internal in
        if ok then begin
          Hashtbl.remove t.fwd ext;
          Hashtbl.remove t.rev internal;
          Hashtbl.remove t.exprs ext
        end;
        ok

    let match_document t doc =
      t.docs <- t.docs + 1;
      let k = t.docs in
      (* churn roughly a third of the live expressions, a different third
         each document *)
      let victims =
        Hashtbl.fold
          (fun ext _ acc -> if (ext + k) mod 3 = 0 then ext :: acc else acc)
          t.fwd []
      in
      List.iter
        (fun ext ->
          let internal = Hashtbl.find t.fwd ext in
          let removed = F.remove t.inst internal in
          assert removed;
          let internal' = F.add t.inst (Hashtbl.find t.exprs ext) in
          Hashtbl.remove t.rev internal;
          Hashtbl.replace t.fwd ext internal';
          Hashtbl.replace t.rev internal' ext)
        (List.sort compare victims);
      List.sort compare
        (List.map (fun i -> Hashtbl.find t.rev i) (F.match_document t.inst doc))

    (* per-document loops, so every document of a batch still gets its
       own churn wave *)
    let match_batch t docs = List.map (match_document t) docs
    let match_string t s = match_document t (Pf_xml.Sax.parse_document s)
    let match_string_batch t srcs = List.map (match_string t) srcs
    let metrics t = F.metrics t.inst
  end)

(* Wrap a filter so every [match_document] goes through [match_batch] as a
   two-element batch of the same document. The two slots must agree with
   each other — batched matching is per-document, so one document's result
   cannot depend on its batch position — and the delivered result then
   diverges from the oracle iff the engine's batched plan does. This is
   the differential wall for the chunked predicate-stage batching: a
   results-pool slot leaking state between batch positions, or a batched
   counter flush corrupting the pair arena, breaks the self-agreement
   assertion before it even reaches the oracle comparison. *)
let batched (filter : Pf_intf.filter) : Pf_intf.filter =
  let (module F) = filter in
  (module struct
    include F

    let match_document t doc =
      match F.match_batch t [ doc; doc ] with
      | [ a; b ] ->
        if a <> b then
          failwith "match_batch: same document, different result across batch slots";
        a
      | rs ->
        failwith
          (Printf.sprintf "match_batch: %d results for a 2-document batch"
             (List.length rs))

    let match_string t s = match_document t (Pf_xml.Sax.parse_document s)
  end)

(* The subsumption wrapper under churn: canonicalization, hash-consing,
   alias merging and shape retirement/promotion all run between documents
   (the churn wave removes and re-adds expressions, so shapes collapse to
   one physical sid, lose logicals, retire and are rebuilt), and the
   fan-out must stay byte-identical to the oracle throughout. *)
let subsumed_engine ~ename ?variant ?attr_mode ?stream () =
  {
    ename;
    filter =
      churned
        (Pf_core.Subsume.filter
           (Pf_core.Engine.filter ?variant ?attr_mode ?stream () :> Pf_intf.filter));
    supports = engine_subset;
    finalize = ignore;
  }

let batched_engine ~ename ?variant ?attr_mode ?stream () =
  {
    ename;
    filter =
      batched
        (Pf_core.Engine.filter ?variant ?attr_mode ?stream ()
          :> Pf_intf.filter);
    supports = engine_subset;
    finalize = ignore;
  }

let cached_engine ~ename ?variant ?attr_mode ?stream () =
  {
    ename;
    filter =
      churned
        (Pf_core.Engine.filter ?variant ?attr_mode ~path_cache:true ?stream ()
          :> Pf_intf.filter);
    supports = engine_subset;
    finalize = ignore;
  }

let yfilter_engine =
  {
    ename = "yfilter";
    filter = (module Pf_yfilter.Yfilter);
    supports = Ast.is_single_path;
    finalize = ignore;
  }

let index_filter_engine =
  {
    ename = "index-filter";
    filter = (module Pf_indexfilter.Index_filter);
    supports = Ast.is_single_path;
    finalize = ignore;
  }

(* The service wrapped as a FILTER: subscribe/unsubscribe/filter_batch over
   a live set of worker domains. Instances created during one [run] are
   tracked so [finalize] can join their domains — the runner calls it even
   when the case crashes. Matching through the service exercises replica
   log replay, batching and (in [Expr] mode) shard merging against the
   same oracle as the sequential engines. *)
let service_engine ~ename ~mode ~domains ?(stream = Pf_core.Engine.Tree)
    ?(subsumption = false) () =
  let live : Pf_service.t list ref = ref [] in
  let module S = struct
    type t = Pf_service.t

    let create () =
      let base = (Pf_core.Engine.filter ~stream () :> Pf_intf.filter) in
      let filter = if subsumption then Pf_core.Subsume.filter base else base in
      let svc = Pf_service.create ~mode ~domains ~batch:2 filter in
      live := svc :: !live;
      svc

    let add t p = Pf_service.subscribe t p
    let add_string t s = Pf_service.subscribe_string t s
    let remove t sid = Pf_service.unsubscribe t sid

    (* with a streaming engine the document goes in raw: serialized text
       submitted through [filter_batch_raw], so no layer of the pipeline
       parses a tree on the matching side *)
    let match_document t doc =
      let r =
        match stream with
        | Pf_core.Engine.Tree -> Pf_service.filter_batch t [ doc ]
        | Scan | Stream ->
          Pf_service.filter_batch_raw t [ Pf_xml.Print.to_string ~decl:false doc ]
      in
      match r with [ r ] -> r | _ -> assert false

    (* a real batch submission: every document of the batch is in flight
       through the worker pipeline at once, so the workers' grouped
       match_batch path is exercised *)
    let match_batch t docs =
      match stream with
      | Pf_core.Engine.Tree -> Pf_service.filter_batch t docs
      | Scan | Stream ->
        Pf_service.filter_batch_raw t
          (List.map (Pf_xml.Print.to_string ~decl:false) docs)

    let match_string t s = match_document t (Pf_xml.Sax.parse_document s)

    let match_string_batch t srcs =
      match_batch t (List.map Pf_xml.Sax.parse_document srcs)

    let metrics t = Pf_service.metrics t
  end in
  {
    ename;
    filter = (module S);
    supports = engine_subset;
    finalize =
      (fun () ->
        let svcs = !live in
        live := [];
        List.iter Pf_service.shutdown svcs);
  }

let default_roster () =
  [
    oracle;
    predicate_engine ~ename:"engine" ~variant:Pf_core.Expr_index.Access_predicate
      ~attr_mode:Pf_core.Engine.Inline ();
    predicate_engine ~ename:"engine-nested-sp" ~variant:Pf_core.Expr_index.Basic
      ~attr_mode:Pf_core.Engine.Postponed ();
    yfilter_engine;
    index_filter_engine;
  ]

let extended_roster () =
  default_roster ()
  @ [
      predicate_engine ~ename:"engine-pc" ~variant:Pf_core.Expr_index.Prefix_covering ();
      predicate_engine ~ename:"engine-shared-dedup" ~variant:Pf_core.Expr_index.Shared
        ~dedup_paths:true ();
      (* the two tree-free ingest modes against the tree-mode oracle:
         snapshot-per-path and fully streaming (arena publications refilled
         from the step stack) — the streaming-vs-tree differential wall *)
      predicate_engine ~ename:"engine-scan" ~stream:Pf_core.Engine.Scan ();
      predicate_engine ~ename:"engine-stream" ~stream:Pf_core.Engine.Stream ();
      (* the batched matching plan (chunked predicate stage over a results
         pool) — every document matched as a two-element batch, with a
         batch-internal self-agreement assertion on top of the oracle
         comparison *)
      batched_engine ~ename:"engine-batched" ();
      (* the cross-document path-result cache under subscription churn:
         inline (symbol-keyed entries) and selection-postponed with
         attribute-sensitive keys; every document is preceded by a
         deterministic unsubscribe/resubscribe wave, so stale cache
         entries surviving an epoch bump diverge from the oracle *)
      cached_engine ~ename:"engine-cached" ();
      cached_engine ~ename:"engine-cached-sp" ~variant:Pf_core.Expr_index.Basic
        ~attr_mode:Pf_core.Engine.Postponed ();
      (* streaming composed with the churned path cache: arena publications
         must produce byte-identical cache keys to tree-extracted paths *)
      cached_engine ~ename:"engine-stream-cached" ~stream:Pf_core.Engine.Stream ();
      (* the service layer against the same oracle: document-replicated and
         expression-sharded, at a domain count that makes sharding
         non-trivial (3 shards interleave sids 0,3,6.. / 1,4,.. / 2,5,..) *)
      service_engine ~ename:"service-doc" ~mode:Pf_service.Doc ~domains:2 ();
      service_engine ~ename:"service-expr" ~mode:Pf_service.Expr ~domains:3 ();
      (* streaming engines behind the service: documents travel as raw XML
         text (filter_batch_raw) and are matched off the event stream on
         the worker domains *)
      service_engine ~ename:"service-stream" ~mode:Pf_service.Doc ~domains:2
        ~stream:Pf_core.Engine.Stream ();
      service_engine ~ename:"service-stream-expr" ~mode:Pf_service.Expr ~domains:2
        ~stream:Pf_core.Engine.Stream ();
      (* the subsumption index between the roster and the engine: logical
         sids fan out from hash-consed physical shapes, with churn waves
         retiring and rebuilding shapes between documents *)
      subsumed_engine ~ename:"engine-subsumed" ();
      service_engine ~ename:"service-subsumed-doc" ~mode:Pf_service.Doc ~domains:2
        ~subsumption:true ();
      service_engine ~ename:"service-subsumed-expr" ~mode:Pf_service.Expr ~domains:3
        ~subsumption:true ();
    ]
