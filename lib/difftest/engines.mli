(** The engine roster for differential testing.

    Every filtering implementation in the repository is wrapped behind a
    uniform interface: given an expression set and a document set, produce
    the boolean verdict matrix [(expr, doc) -> matched]. The reference
    evaluator {!Pf_xpath.Eval} is the first engine — the correctness oracle
    all others must agree with.

    Engines declare the expression subset they support; unsupported
    expressions are excluded from comparison for that engine (YFilter and
    Index-Filter take no nested paths; the predicate engine takes no filters
    on wildcard steps). An exception anywhere else is a reportable crash. *)

type engine = {
  ename : string;
  supports : Pf_xpath.Ast.path -> bool;
  run : Pf_xpath.Ast.path array -> bool array -> Pf_xml.Tree.t array -> bool array array;
      (** [run exprs supported docs] — verdict matrix, [exprs] rows by
          [docs] columns; rows whose [supported] flag is false are all
          [false] and not compared. May raise (a crash divergence). *)
}

val oracle : engine
(** ["eval"] — brute-force matching via {!Pf_xpath.Eval.matches}. *)

val default_roster : unit -> engine list
(** The five engines of the differential harness, oracle first:
    ["eval"], ["engine"] (predicate engine, basic-pc-ap, inline attributes;
    nested paths via the Section 5 decomposition), ["engine-nested-sp"]
    (basic organization with selection-postponed attributes — the
    alternative occurrence-determination path), ["yfilter"] and
    ["index-filter"]. *)

val extended_roster : unit -> engine list
(** {!default_roster} plus ["engine-pc"] (prefix covering),
    ["engine-shared-dedup"] (the shared-trie ablation with path
    deduplication) and ["engine-stream"] (the SAX streaming pipeline,
    matching the serialized document without materializing a tree). *)

val engine_subset : Pf_xpath.Ast.path -> bool
(** The predicate engine's supported subset: no attribute or nested filters
    attached to wildcard steps (recursively through nested paths). *)
