(** The engine roster for differential testing.

    Every roster entry is a first-class {!Pf_intf.FILTER} module plus a
    configuration label; one generic runner ({!run}) turns any entry into
    the boolean verdict matrix [(expr, doc) -> matched]. The reference
    implementation {!Pf_intf.Reference} (brute-force {!Pf_xpath.Eval}) is
    the first engine — the correctness oracle all others must agree with.

    Engines declare the expression subset they support; unsupported
    expressions are excluded from comparison for that engine (YFilter and
    Index-Filter take no nested paths; the predicate engine takes no filters
    on wildcard steps). An exception anywhere else is a reportable crash. *)

type engine = {
  ename : string;  (** configuration label, e.g. ["engine-nested-sp"] *)
  filter : Pf_intf.filter;  (** the implementation, as a first-class module *)
  supports : Pf_xpath.Ast.path -> bool;
      (** the expression subset compared for this engine; out-of-subset
          rows are excluded (the engine would raise
          {!Pf_intf.Unsupported} on them) *)
  finalize : unit -> unit;
      (** called by {!run} after every case, crash or not — [ignore] for
          plain engines; service-backed entries join their worker domains
          here *)
}

val run :
  engine -> Pf_xpath.Ast.path array -> bool array -> Pf_xml.Tree.t array -> bool array array
(** [run e exprs supported docs] — verdict matrix, [exprs] rows by [docs]
    columns, computed on a fresh instance of [e.filter]; rows whose
    [supported] flag is false are all [false] and not compared. May raise
    (a crash divergence). *)

val oracle : engine
(** ["eval"] — {!Pf_intf.Reference}, brute-force matching via
    {!Pf_xpath.Eval.matches}. *)

val predicate_engine :
  ename:string ->
  ?variant:Pf_core.Expr_index.variant ->
  ?attr_mode:Pf_core.Engine.attr_mode ->
  ?dedup_paths:bool ->
  ?path_cache:bool ->
  ?stream:Pf_core.Engine.ingest ->
  unit ->
  engine
(** A labeled predicate-engine configuration (see {!Pf_core.Engine.filter}). *)

val churned : Pf_intf.filter -> Pf_intf.filter
(** Wrap a filter so every [match_document] first unsubscribes and
    re-subscribes a deterministic third of the live expressions (a
    different third each document), translating sids so the wrapper's
    external sids stay stable. Exercises subscription-epoch invalidation
    — a path-result cache serving stale entries across the churn shows up
    as an oracle divergence. *)

val cached_engine :
  ename:string ->
  ?variant:Pf_core.Expr_index.variant ->
  ?attr_mode:Pf_core.Engine.attr_mode ->
  ?stream:Pf_core.Engine.ingest ->
  unit ->
  engine
(** The predicate engine with [path_cache:true], behind {!churned}. *)

val batched : Pf_intf.filter -> Pf_intf.filter
(** Wrap a filter so every [match_document] goes through [match_batch] as
    a two-element batch of the same document: the two results must agree
    with each other (batched matching is per-document — a batch position
    must not influence a document's match set) and the delivered result is
    then compared against the oracle like any other engine's. *)

val batched_engine :
  ename:string ->
  ?variant:Pf_core.Expr_index.variant ->
  ?attr_mode:Pf_core.Engine.attr_mode ->
  ?stream:Pf_core.Engine.ingest ->
  unit ->
  engine
(** A predicate-engine configuration behind {!batched} — the differential
    wall for the chunked predicate-stage batching and its results pool. *)

val subsumed_engine :
  ename:string ->
  ?variant:Pf_core.Expr_index.variant ->
  ?attr_mode:Pf_core.Engine.attr_mode ->
  ?stream:Pf_core.Engine.ingest ->
  unit ->
  engine
(** The predicate engine behind {!Pf_core.Subsume.filter}, behind
    {!churned}: per-document churn waves remove and re-add expressions, so
    shapes merge, lose logicals, retire and are rebuilt — and the fan-out
    must stay byte-identical to the oracle throughout. *)

val yfilter_engine : engine
val index_filter_engine : engine

val service_engine :
  ename:string ->
  mode:Pf_service.mode ->
  domains:int ->
  ?stream:Pf_core.Engine.ingest ->
  ?subsumption:bool ->
  unit ->
  engine
(** The predicate engine behind {!Pf_service}, one [filter_batch] per
    document: exercises replica log replay, worker batching and — in
    [Expr] mode — shard merging, against the same oracle. With a
    non-[Tree] [stream] the engine replicas are streaming and documents
    are submitted as serialized text through [filter_batch_raw], so no
    layer parses a tree on the matching side. With [subsumption] (default
    false) each replica's engine sits behind the subsumption index, so
    replica log replay and shard merging run over fanned-out logical
    sids. Worker domains are joined by [finalize] after each case. *)

val default_roster : unit -> engine list
(** The five engines of the differential harness, oracle first:
    ["eval"], ["engine"] (predicate engine, basic-pc-ap, inline attributes;
    nested paths via the Section 5 decomposition), ["engine-nested-sp"]
    (basic organization with selection-postponed attributes — the
    alternative occurrence-determination path), ["yfilter"] and
    ["index-filter"]. *)

val extended_roster : unit -> engine list
(** {!default_roster} plus ["engine-pc"] (prefix covering),
    ["engine-shared-dedup"] (the shared-trie ablation with path
    deduplication), ["engine-scan"] / ["engine-stream"] (the two
    tree-free SAX ingest modes — snapshot-per-path and fully streaming
    arena publications — matching the serialized document against the
    tree-mode oracle), ["engine-batched"] (every document matched through
    [match_batch] as a two-element batch — see {!batched_engine}),
    ["engine-cached"] / ["engine-cached-sp"] (the
    cross-document path-result cache, inline and selection-postponed,
    under per-document subscription churn — see {!churned}),
    ["engine-stream-cached"] (the churned cache over the fully streaming
    engine — arena publications must key the cache byte-identically to
    tree paths), ["service-doc"] (the document-replicated service at 2
    domains), ["service-expr"] (the expression-sharded service at 3
    domains) and ["service-stream"] / ["service-stream-expr"] (streaming
    replicas fed raw document text through [filter_batch_raw], in both
    modes), plus the subsumption-index entries: ["engine-subsumed"] (the
    churned subsumption wrapper — see {!subsumed_engine}) and
    ["service-subsumed-doc"] / ["service-subsumed-expr"] (subsumed engine
    replicas behind the service in both shard modes). *)

val engine_subset : Pf_xpath.Ast.path -> bool
(** The predicate engine's supported subset: no attribute or nested filters
    attached to wildcard steps (recursively through nested paths). *)
