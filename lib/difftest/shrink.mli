(** Counterexample shrinking.

    Greedy delta-debugging over a failing (expression set, document set)
    pair: repeatedly apply the first single-step reduction that keeps the
    failure alive, until none does (the result is 1-minimal with respect to
    the reduction operators). Reductions, in the order tried:

    - drop a document, drop an expression;
    - shorten an expression (remove a location step), strip a filter,
      weaken a descendant axis to a child axis, shrink a nested filter;
    - prune a document subtree (remove a child node), splice an element
      (replace it by its children), drop an attribute. *)

val path_reductions : Pf_xpath.Ast.path -> Pf_xpath.Ast.path list
(** All single-step reductions of an expression (steps stay non-empty). *)

val doc_reductions : Pf_xml.Tree.t -> Pf_xml.Tree.t list
(** All single-step reductions of a document (the root element remains). *)

val minimize :
  ?max_attempts:int ->
  failing:(Pf_xpath.Ast.path array -> Pf_xml.Tree.t array -> bool) ->
  Pf_xpath.Ast.path array ->
  Pf_xml.Tree.t array ->
  Pf_xpath.Ast.path array * Pf_xml.Tree.t array * int
(** [minimize ~failing exprs docs] assumes [failing exprs docs = true] and
    returns a reduced pair that still fails, together with the number of
    successful reduction steps. [max_attempts] (default [20_000]) bounds
    the total number of [failing] evaluations. *)
