(* The predicate index exactly as it was before the cache-flat rewrite:
   per-operator vectors of pid *lists* indexed by predicate value, with
   relative predicates dispatched through per-symbol hashtables. Kept as a
   test-only reference so the flat implementation in
   {!Pf_core.Predicate_index} can be checked for byte-identical behaviour
   (match sets, pair order, probe/hit totals) by the equivalence property
   in the test suite. The only changes from the historical code are the
   two micro-cleanups the rewrite subsumed: [run] reads
   [pub.Publication.length] once, and the length-table bound is hoisted
   out of its loop. *)

open Pf_core

type pid = int

(* Per-operator arrays of pid lists, indexed by predicate value. A slot
   holds a list because predicates sharing (tags, op, value) but differing
   in attribute constraints are distinct. *)
type slots = {
  eq : pid list Vec.t;
  ge : pid list Vec.t;
}

let make_slots () =
  { eq = Vec.create ~dummy:[] (); ge = Vec.create ~dummy:[] () }

let slot_vec slots (op : Predicate.op) =
  match op with Predicate.Eq -> slots.eq | Predicate.Ge -> slots.ge

type metrics = { probes : Pf_obs.Counter.t; hits : Pf_obs.Counter.t }

let make_metrics ?registry () =
  {
    probes =
      Pf_obs.Counter.make ?registry "predicate_probes"
        ~help:"candidate predicates inspected during predicate matching";
    hits =
      Pf_obs.Counter.make ?registry "predicate_hits"
        ~help:"occurrence pairs recorded during predicate matching";
  }

(* Tag tables are dense vectors indexed by interned symbol. Unused slots
   share physically-identical placeholder values (recognized by [==],
   replaced by fresh structures on first intern, never written through). *)
let dummy_slots = make_slots ()
let dummy_rel : (int, slots) Hashtbl.t = Hashtbl.create 1
let dummy_eop : pid list Vec.t = Vec.create ~dummy:[] ()

type t = {
  preds : Predicate.t Vec.t;  (* pid -> predicate *)
  cons1 : Predicate.attr_constraint list Vec.t;  (* pid -> first-var constraints *)
  cons2 : Predicate.attr_constraint list Vec.t;
  absolute : slots Vec.t;  (* indexed by tag symbol *)
  relative : (int, slots) Hashtbl.t Vec.t;
      (* indexed by first symbol; inner table keyed by second symbol *)
  end_of_path : pid list Vec.t Vec.t;  (* indexed by tag symbol *)
  length_slots : pid list Vec.t;  (* value-indexed; op is always >= *)
  m : metrics;
}

let create ?metrics () =
  {
    preds = Vec.create ~dummy:(Predicate.Length { v = 0 }) ();
    cons1 = Vec.create ~dummy:[] ();
    cons2 = Vec.create ~dummy:[] ();
    absolute = Vec.create ~dummy:dummy_slots ();
    relative = Vec.create ~dummy:dummy_rel ();
    end_of_path = Vec.create ~dummy:dummy_eop ();
    length_slots = Vec.create ~dummy:[] ();
    m = (match metrics with Some m -> m | None -> make_metrics ());
  }

let predicate t pid = Vec.get t.preds pid

let size t = Vec.length t.preds

(* The value-indexed slot vector and value for a predicate. *)
let locate t (p : Predicate.t) : pid list Vec.t * int =
  match p with
  | Predicate.Absolute { tag; op; v } ->
    let sym = Symbol.intern tag.name in
    Vec.ensure t.absolute (sym + 1);
    let slots =
      let s = Vec.get t.absolute sym in
      if s != dummy_slots then s
      else begin
        let s = make_slots () in
        Vec.set t.absolute sym s;
        s
      end
    in
    slot_vec slots op, v
  | Predicate.Relative { first; second; op; v } ->
    let sym1 = Symbol.intern first.name and sym2 = Symbol.intern second.name in
    Vec.ensure t.relative (sym1 + 1);
    let tbl2 =
      let tbl = Vec.get t.relative sym1 in
      if tbl != dummy_rel then tbl
      else begin
        let tbl = Hashtbl.create 8 in
        Vec.set t.relative sym1 tbl;
        tbl
      end
    in
    let slots =
      match Hashtbl.find_opt tbl2 sym2 with
      | Some s -> s
      | None ->
        let s = make_slots () in
        Hashtbl.add tbl2 sym2 s;
        s
    in
    slot_vec slots op, v
  | Predicate.End_of_path { tag; v } ->
    let sym = Symbol.intern tag.name in
    Vec.ensure t.end_of_path (sym + 1);
    let vec =
      let vec = Vec.get t.end_of_path sym in
      if vec != dummy_eop then vec
      else begin
        let vec = Vec.create ~dummy:[] () in
        Vec.set t.end_of_path sym vec;
        vec
      end
    in
    vec, v
  | Predicate.Length { v } -> t.length_slots, v

let find t p =
  let vec, v = locate t p in
  if v >= Vec.length vec then None
  else
    List.find_opt (fun pid -> Predicate.equal (Vec.get t.preds pid) p) (Vec.get vec v)

let intern t p =
  let vec, v = locate t p in
  Vec.ensure vec (v + 1);
  match
    List.find_opt (fun pid -> Predicate.equal (Vec.get t.preds pid) p) (Vec.get vec v)
  with
  | Some pid -> pid
  | None ->
    let pid = Vec.push t.preds p in
    let c1, c2 = Predicate.constraints_of p in
    let (_ : int) = Vec.push t.cons1 c1 in
    let (_ : int) = Vec.push t.cons2 c2 in
    Vec.set vec v (pid :: Vec.get vec v);
    pid

(* ------------------------------------------------------------------ *)
(* Predicate matching — the historical results arena, kept structurally
   identical to {!Pf_core.Predicate_index.results} so pair order and cell
   layout can be compared one to one. *)

let pack o1 o2 = (o1 lsl 16) lor o2

let packed_first p = p lsr 16
let packed_second p = p land 0xffff

type results = {
  mutable epoch : int;
  mutable stamp : int array;  (* pid -> epoch of last match *)
  mutable heads : int array;  (* pid -> newest cell index (valid iff stamped) *)
  mutable cells : int array;
  mutable n_cells : int;  (* cells used this epoch *)
  mutable matched : int;  (* matched predicates this epoch *)
  mutable r_probes : int;
  mutable r_hits : int;
}

let create_results () =
  {
    epoch = 0;
    stamp = [||];
    heads = [||];
    cells = [||];
    n_cells = 0;
    matched = 0;
    r_probes = 0;
    r_hits = 0;
  }

let ensure_capacity res n =
  if Array.length res.stamp < n then begin
    let cap = max n (2 * Array.length res.stamp) in
    let stamp = Array.make cap 0 and heads = Array.make cap (-1) in
    Array.blit res.stamp 0 stamp 0 (Array.length res.stamp);
    Array.blit res.heads 0 heads 0 (Array.length res.heads);
    res.stamp <- stamp;
    res.heads <- heads
  end

let record res pid packed =
  let c = res.n_cells in
  if 2 * c + 1 >= Array.length res.cells then begin
    let bigger = Array.make (max 64 (2 * Array.length res.cells)) (-1) in
    Array.blit res.cells 0 bigger 0 (Array.length res.cells);
    res.cells <- bigger
  end;
  res.cells.(2 * c) <- packed;
  if res.stamp.(pid) = res.epoch then res.cells.((2 * c) + 1) <- res.heads.(pid)
  else begin
    res.stamp.(pid) <- res.epoch;
    res.cells.((2 * c) + 1) <- -1;
    res.matched <- res.matched + 1
  end;
  res.heads.(pid) <- c;
  res.n_cells <- c + 1

let is_matched res pid =
  pid < Array.length res.stamp && res.stamp.(pid) = res.epoch

let iter_pairs res pid f =
  if is_matched res pid then begin
    let cells = res.cells in
    let c = ref res.heads.(pid) in
    while !c >= 0 do
      f cells.(2 * !c);
      c := cells.((2 * !c) + 1)
    done
  end

let get_packed res pid =
  let acc = ref [] in
  iter_pairs res pid (fun p -> acc := p :: !acc);
  List.rev !acc

let get res pid =
  List.map (fun p -> packed_first p, packed_second p) (get_packed res pid)

let matched_count res = res.matched

let cons_ok t pid ~first ~second =
  (match Vec.get t.cons1 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs first)
  &&
  match Vec.get t.cons2 pid with
  | [] -> true
  | cs -> Predicate.check_constraints cs second

let rec visit_slot t res first second packed = function
  | [] -> ()
  | pid :: rest ->
    res.r_probes <- res.r_probes + 1;
    if cons_ok t pid ~first ~second then begin
      res.r_hits <- res.r_hits + 1;
      record res pid packed
    end;
    visit_slot t res first second packed rest

let rec visit_length res = function
  | [] -> ()
  | pid :: rest ->
    res.r_probes <- res.r_probes + 1;
    res.r_hits <- res.r_hits + 1;
    record res pid (pack 0 0);
    visit_length res rest

let run t res (pub : Publication.t) =
  ensure_capacity res (Vec.length t.preds);
  res.epoch <- res.epoch + 1;
  res.n_cells <- 0;
  res.matched <- 0;
  res.r_probes <- 0;
  res.r_hits <- 0;
  let l = pub.Publication.length in
  (* length-of-expression predicates: (length,>=,v) matches iff l >= v *)
  let stop = min l (Vec.length t.length_slots - 1) in
  for v = 1 to stop do
    visit_length res (Vec.get t.length_slots v)
  done;
  let tuples = pub.Publication.tuples in
  let n_abs = Vec.length t.absolute in
  let n_rel = Vec.length t.relative in
  let n_eop = Vec.length t.end_of_path in
  for i = 0 to l - 1 do
    let tu = tuples.(i) in
    let sym = tu.Publication.tag in
    let o = tu.Publication.occurrence in
    let attrs = tu.Publication.attrs in
    (* absolute predicates *)
    (if sym < n_abs then begin
       let slots = Vec.get t.absolute sym in
       if slots != dummy_slots then begin
         let pos = tu.Publication.pos in
         if pos < Vec.length slots.eq then
           visit_slot t res attrs attrs (pack o o) (Vec.get slots.eq pos);
         let stop = min pos (Vec.length slots.ge - 1) in
         for v = 1 to stop do
           visit_slot t res attrs attrs (pack o o) (Vec.get slots.ge v)
         done
       end
     end);
    (* end-of-path predicates: (p_t-|,>=,v) matches iff l - pos >= v *)
    (if sym < n_eop then begin
       let vec = Vec.get t.end_of_path sym in
       if vec != dummy_eop then begin
         let stop = min (l - tu.Publication.pos) (Vec.length vec - 1) in
         for v = 1 to stop do
           visit_slot t res attrs attrs (pack o o) (Vec.get vec v)
         done
       end
     end);
    (* relative predicates: pair this tuple with every later tuple *)
    if sym < n_rel then begin
      let tbl2 = Vec.get t.relative sym in
      if tbl2 != dummy_rel then
        for j = i + 1 to l - 1 do
          let tu2 = tuples.(j) in
          match Hashtbl.find tbl2 tu2.Publication.tag with
          | exception Not_found -> ()
          | slots ->
            let d = tu2.Publication.pos - tu.Publication.pos in
            let o2 = tu2.Publication.occurrence in
            let attrs2 = tu2.Publication.attrs in
            if d < Vec.length slots.eq then
              visit_slot t res attrs attrs2 (pack o o2)
                (Vec.get slots.eq d);
            let stop = min d (Vec.length slots.ge - 1) in
            for v = 1 to stop do
              visit_slot t res attrs attrs2 (pack o o2)
                (Vec.get slots.ge v)
            done
        done
    end
  done;
  Pf_obs.Counter.add t.m.probes res.r_probes;
  Pf_obs.Counter.add t.m.hits res.r_hits
