(* Minimal JSON: enough to write metric/benchmark exports and to parse
   them back in tests and CI checks. No dependency beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let buf_add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* shortest representation that still round-trips as a JSON number *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    end
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    buf_add_escaped buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        buf_add_escaped buf k;
        Buffer.add_string buf "\":";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing *)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))
let peek cur = if cur.pos >= String.length cur.src then '\000' else cur.src.[cur.pos]

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  if peek cur <> c then fail cur (Printf.sprintf "expected %C" c);
  cur.pos <- cur.pos + 1

let literal cur word v =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | '\000' -> fail cur "unterminated string"
    | '"' -> cur.pos <- cur.pos + 1
    | '\\' ->
      cur.pos <- cur.pos + 1;
      (match peek cur with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'u' ->
        if cur.pos + 4 >= String.length cur.src then fail cur "bad \\u escape";
        let hex = String.sub cur.src (cur.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> fail cur "bad \\u escape"
        | Some code ->
          (* decode to UTF-8; surrogate pairs are not needed for our output *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          cur.pos <- cur.pos + 4)
      | c -> fail cur (Printf.sprintf "bad escape \\%C" c));
      cur.pos <- cur.pos + 1;
      go ()
    | c ->
      Buffer.add_char buf c;
      cur.pos <- cur.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < String.length cur.src && is_num_char cur.src.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %S" s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | 'n' -> literal cur "null" Null
  | 't' -> literal cur "true" (Bool true)
  | 'f' -> literal cur "false" (Bool false)
  | '"' -> String (parse_string cur)
  | '[' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = ']' then begin
      cur.pos <- cur.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | ',' ->
          cur.pos <- cur.pos + 1;
          items (v :: acc)
        | ']' ->
          cur.pos <- cur.pos + 1;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | '{' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = '}' then begin
      cur.pos <- cur.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | ',' ->
          cur.pos <- cur.pos + 1;
          members ((k, v) :: acc)
        | '}' ->
          cur.pos <- cur.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (members [])
    end
  | '-' | '0' .. '9' -> parse_number cur
  | c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
