(* Metric registry: named counters, gauges, log-scale histograms and span
   timers. A registry groups the metrics of one component instance (an
   engine, a broker, the SAX layer); exporters walk a registry — or every
   listed registry — and render the samples.

   Cost model: a counter increment is one mutable-int store, cheap enough
   for per-path and per-run call sites (innermost loops accumulate into a
   local and flush once). Span timers read the monotonic clock only when
   the caller decides to time, so a disabled engine pays nothing. *)

let now_ns : unit -> int64 = Monotonic_clock.now

type counter = { c_name : string; c_help : string; mutable c_value : int }

(* How replica instances of one gauge combine under [merge]: [Max] for
   high-water marks (deepest nesting seen anywhere), [Sum] for sizes whose
   total is what matters (live cache entries held across replicas). *)
type gauge_merge = Max | Sum

type gauge = {
  g_name : string;
  g_help : string;
  g_merge : gauge_merge;
  mutable g_value : float;
}

(* Log-scale (powers of two) histogram: bucket [i] counts observations with
   value <= 2^i, the last bucket is unbounded. 32 buckets cover every
   quantity we track (chain lengths, list sizes, nanoseconds). *)
let histogram_buckets = 32

type histogram = {
  h_name : string;
  h_help : string;
  mutable h_count : int;
  mutable h_sum : int;
      (* observations are ints, so the running sum is one too: mutating a
         boxed [float] field would allocate a box per [observe], and
         observe sits on the per-path match fast path (chain-length
         histogram) *)
  h_counts : int array;  (* per-bucket (non-cumulative) counts *)
}

type span = { s_name : string; s_help : string; mutable s_ns : int64 }

(* Log-linear ("HDR-style") quantile histogram. Each power-of-two range is
   split into [qhist_sub] linear sub-buckets, so any recorded value is
   bucketed with relative error <= 1/qhist_sub (values below [qhist_sub]
   are exact). Unlike the power-of-two [histogram] above — whose buckets
   are a factor of 2 wide and therefore useless for percentile readouts —
   this one answers p50/p90/p99/p999 queries to ~3% while staying a fixed
   flat int array that merges across replicas by element-wise addition. *)
let qhist_sub_bits = 5
let qhist_sub = 1 lsl qhist_sub_bits (* 32 *)

(* Buckets cover the full non-negative int range: msb(v) runs up to 62 on
   64-bit, each msb contributes [qhist_sub] buckets past the exact region. *)
let qhist_buckets = (62 - qhist_sub_bits + 1) * qhist_sub + qhist_sub

type qhist = {
  q_name : string;
  q_help : string;
  mutable q_count : int;
  mutable q_sum : float;
  mutable q_min : int;  (* max_int when empty *)
  mutable q_max : int;
  q_counts : int array;  (* per-bucket (non-cumulative) counts *)
}

type metric =
  | Metric_counter of counter
  | Metric_gauge of gauge
  | Metric_histogram of histogram
  | Metric_span of span
  | Metric_qhist of qhist

type t = { scope : string; mutable metrics : metric list (* reversed *) }

(* Listed registries, in creation order; exporters can render all of them.
   Scopes are uniquified ("engine", "engine#2", ...) so exports stay
   unambiguous when several instances of one component coexist. *)
let listed : t list ref = ref []
let scope_counts : (string, int) Hashtbl.t = Hashtbl.create 8

let create ?(list = true) scope =
  let scope =
    if not list then scope
    else begin
      let n = match Hashtbl.find_opt scope_counts scope with Some n -> n | None -> 0 in
      Hashtbl.replace scope_counts scope (n + 1);
      if n = 0 then scope else Printf.sprintf "%s#%d" scope (n + 1)
    end
  in
  let t = { scope; metrics = [] } in
  if list then listed := t :: !listed;
  t

let scope t = t.scope
let registries () = List.rev !listed

let register t m = t.metrics <- m :: t.metrics

let reset t =
  List.iter
    (function
      | Metric_counter c -> c.c_value <- 0
      | Metric_gauge g -> g.g_value <- 0.
      | Metric_histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0;
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0
      | Metric_span s -> s.s_ns <- 0L
      | Metric_qhist q ->
        q.q_count <- 0;
        q.q_sum <- 0.;
        q.q_min <- max_int;
        q.q_max <- 0;
        Array.fill q.q_counts 0 (Array.length q.q_counts) 0)
    t.metrics

module Counter = struct
  type t = counter

  let make ?registry ?(help = "") name =
    let c = { c_name = name; c_help = help; c_value = 0 } in
    (match registry with Some r -> register r (Metric_counter c) | None -> ());
    c

  let incr c = c.c_value <- c.c_value + 1
  let add c n = c.c_value <- c.c_value + n
  let get c = c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge
  type merge_policy = gauge_merge = Max | Sum

  let make ?registry ?(help = "") ?(merge = Max) name =
    let g = { g_name = name; g_help = help; g_merge = merge; g_value = 0. } in
    (match registry with Some r -> register r (Metric_gauge g) | None -> ());
    g

  let set g v = g.g_value <- v
  let set_max g v = if v > g.g_value then g.g_value <- v
  let get g = g.g_value
  let merge_policy g = g.g_merge
end

module Histogram = struct
  type t = histogram

  let make ?registry ?(help = "") name =
    let h =
      { h_name = name; h_help = help; h_count = 0; h_sum = 0;
        h_counts = Array.make histogram_buckets 0 }
    in
    (match registry with Some r -> register r (Metric_histogram h) | None -> ());
    h

  (* Index of the smallest bucket bound 2^i >= v (v <= 1 lands in bucket 0,
     values past the last bound in the last bucket). Recursion instead of
     ref cells: two refs per call is real allocation at observe rates. *)
  let rec bucket_scan v i bound =
    if v <= bound || i >= histogram_buckets - 1 then i
    else bucket_scan v (i + 1) (bound * 2)

  let bucket_index v = if v <= 1 then 0 else bucket_scan v 1 2

  let observe h v =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    let i = bucket_index v in
    h.h_counts.(i) <- h.h_counts.(i) + 1

  let count h = h.h_count
  let sum h = float_of_int h.h_sum

  (* (upper bound, cumulative count) pairs; the last bound is
     [infinity]. Trailing all-zero buckets beyond the last observation are
     elided (the unbounded bucket always remains). *)
  let cumulative h =
    let last_used = ref 0 in
    Array.iteri (fun i n -> if n > 0 then last_used := i) h.h_counts;
    let stop = min (!last_used + 1) (histogram_buckets - 1) in
    let acc = ref 0 and out = ref [] in
    for i = 0 to stop - 1 do
      acc := !acc + h.h_counts.(i);
      out := (ldexp 1. i, !acc) :: !out
    done;
    List.rev ((infinity, h.h_count) :: !out)
end

module Span = struct
  type t = span

  let make ?registry ?(help = "") name =
    let s = { s_name = name; s_help = help; s_ns = 0L } in
    (match registry with Some r -> register r (Metric_span s) | None -> ());
    s

  let now = now_ns
  let add s ns = s.s_ns <- Int64.add s.s_ns ns
  let ns s = s.s_ns
  let ms s = Int64.to_float s.s_ns /. 1e6

  let time s f =
    let t0 = now () in
    let r = f () in
    add s (Int64.sub (now ()) t0);
    r
end

module Qhist = struct
  type t = qhist

  let make ?registry ?(help = "") name =
    let q =
      { q_name = name; q_help = help; q_count = 0; q_sum = 0.; q_min = max_int;
        q_max = 0; q_counts = Array.make qhist_buckets 0 }
    in
    (match registry with Some r -> register r (Metric_qhist q) | None -> ());
    q

  (* Position of the most significant set bit; [v] > 0. *)
  let msb v =
    let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
    go v 0

  (* Values below [qhist_sub] get a bucket each (exact); above, the top
     [qhist_sub_bits + 1] bits select a linear sub-bucket within the
     value's power-of-two range, so the bucket spans < value/qhist_sub. *)
  let bucket_index v =
    if v < qhist_sub then max v 0
    else begin
      let m = msb v in
      let shift = m - qhist_sub_bits in
      let i = ((shift + 1) * qhist_sub) + ((v lsr shift) - qhist_sub) in
      min i (qhist_buckets - 1)
    end

  (* Largest value bucket [i] can hold (its representative: quantile
     readouts report it, making them upper bounds on the true quantile). *)
  let bucket_value i =
    if i < qhist_sub then i
    else begin
      let shift = (i / qhist_sub) - 1 in
      let base = (i mod qhist_sub) + qhist_sub in
      (((base + 1) lsl shift) - 1)
    end

  let observe q v =
    let v = max v 0 in
    q.q_count <- q.q_count + 1;
    q.q_sum <- q.q_sum +. float_of_int v;
    if v < q.q_min then q.q_min <- v;
    if v > q.q_max then q.q_max <- v;
    let i = bucket_index v in
    q.q_counts.(i) <- q.q_counts.(i) + 1

  let count q = q.q_count
  let sum q = q.q_sum
  let min_value q = if q.q_count = 0 then 0 else q.q_min
  let max_value q = q.q_max

  (* Value at quantile [p] (0 < p <= 1): the representative of the first
     bucket whose cumulative count reaches rank ceil(p * count). Within a
     factor of 1 + 1/qhist_sub of the true order statistic; 0 when empty. *)
  let quantile q p =
    if q.q_count = 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (p *. float_of_int q.q_count)) in
        if r < 1 then 1 else if r > q.q_count then q.q_count else r
      in
      let rec go i acc =
        if i >= qhist_buckets then q.q_max
        else begin
          let acc = acc + q.q_counts.(i) in
          if acc >= rank then Stdlib.min (bucket_value i) q.q_max else go (i + 1) acc
        end
      in
      go 0 0
    end

  (* (upper bound, cumulative count) pairs over the non-empty prefix, one
     pair per occupied bucket plus the terminal [infinity] — the compact
     form Prometheus histogram exposition and the JSON exporter share. *)
  let cumulative q =
    let acc = ref 0 and out = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          acc := !acc + n;
          out := (float_of_int (bucket_value i), !acc) :: !out
        end)
      q.q_counts;
    List.rev ((infinity, q.q_count) :: !out)
end

(* ------------------------------------------------------------------ *)
(* Sample view for exporters *)

type value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of { count : int; sum : float; buckets : (float * int) list }
  | Sample_span of int64  (* accumulated nanoseconds *)
  | Sample_quantiles of {
      count : int;
      sum : float;
      min : int;
      max : int;
      p50 : int;
      p90 : int;
      p99 : int;
      p999 : int;
      buckets : (float * int) list;  (* cumulative, occupied buckets only *)
    }

type sample = { name : string; help : string; value : value }

let sample_of = function
  | Metric_counter c ->
    { name = c.c_name; help = c.c_help; value = Sample_counter c.c_value }
  | Metric_gauge g -> { name = g.g_name; help = g.g_help; value = Sample_gauge g.g_value }
  | Metric_histogram h ->
    { name = h.h_name; help = h.h_help;
      value =
        Sample_histogram
          { count = h.h_count; sum = float_of_int h.h_sum; buckets = Histogram.cumulative h } }
  | Metric_span s -> { name = s.s_name; help = s.s_help; value = Sample_span s.s_ns }
  | Metric_qhist q ->
    { name = q.q_name; help = q.q_help;
      value =
        Sample_quantiles
          { count = q.q_count; sum = q.q_sum; min = Qhist.min_value q;
            max = q.q_max; p50 = Qhist.quantile q 0.5; p90 = Qhist.quantile q 0.9;
            p99 = Qhist.quantile q 0.99; p999 = Qhist.quantile q 0.999;
            buckets = Qhist.cumulative q } }

let samples t = List.rev_map sample_of t.metrics

let find_counter t name =
  List.find_map
    (function
      | Metric_counter c when c.c_name = name -> Some c.c_value
      | _ -> None)
    t.metrics

let find_gauge t name =
  List.find_map
    (function
      | Metric_gauge g when g.g_name = name -> Some g.g_value
      | _ -> None)
    t.metrics

(* ------------------------------------------------------------------ *)
(* Merging: one registry summarizing many same-shaped instances (the
   sharded service merges its per-worker engine replicas this way). *)

let merge ?(list = false) ~scope ts =
  let out = create ~list scope in
  (* find-or-create by name, accumulating in first-seen order *)
  let by_name : (string, metric) Hashtbl.t = Hashtbl.create 16 in
  let absorb m =
    let mname =
      match m with
      | Metric_counter c -> c.c_name
      | Metric_gauge g -> g.g_name
      | Metric_histogram h -> h.h_name
      | Metric_span s -> s.s_name
      | Metric_qhist q -> q.q_name
    in
    match Hashtbl.find_opt by_name mname, m with
    | None, Metric_counter c ->
      let c' = { c with c_name = c.c_name } in
      Hashtbl.add by_name mname (Metric_counter c');
      register out (Metric_counter c')
    | None, Metric_gauge g ->
      let g' = { g with g_name = g.g_name } in
      Hashtbl.add by_name mname (Metric_gauge g');
      register out (Metric_gauge g')
    | None, Metric_histogram h ->
      let h' = { h with h_counts = Array.copy h.h_counts } in
      Hashtbl.add by_name mname (Metric_histogram h');
      register out (Metric_histogram h')
    | None, Metric_span s ->
      let s' = { s with s_name = s.s_name } in
      Hashtbl.add by_name mname (Metric_span s');
      register out (Metric_span s')
    | None, Metric_qhist q ->
      let q' = { q with q_counts = Array.copy q.q_counts } in
      Hashtbl.add by_name mname (Metric_qhist q');
      register out (Metric_qhist q')
    | Some (Metric_counter acc), Metric_counter c -> acc.c_value <- acc.c_value + c.c_value
    | Some (Metric_gauge acc), Metric_gauge g ->
      (* the accumulator's own policy decides: [Max] for high-water marks,
         [Sum] for per-replica sizes whose total matters *)
      (match acc.g_merge with
      | Max -> if g.g_value > acc.g_value then acc.g_value <- g.g_value
      | Sum -> acc.g_value <- acc.g_value +. g.g_value)
    | Some (Metric_histogram acc), Metric_histogram h ->
      acc.h_count <- acc.h_count + h.h_count;
      acc.h_sum <- acc.h_sum + h.h_sum;
      Array.iteri (fun i n -> acc.h_counts.(i) <- acc.h_counts.(i) + n) h.h_counts
    | Some (Metric_span acc), Metric_span s -> acc.s_ns <- Int64.add acc.s_ns s.s_ns
    | Some (Metric_qhist acc), Metric_qhist q ->
      acc.q_count <- acc.q_count + q.q_count;
      acc.q_sum <- acc.q_sum +. q.q_sum;
      if q.q_min < acc.q_min then acc.q_min <- q.q_min;
      if q.q_max > acc.q_max then acc.q_max <- q.q_max;
      Array.iteri (fun i n -> acc.q_counts.(i) <- acc.q_counts.(i) + n) q.q_counts
    | Some _, _ -> ()  (* same name, different shape: keep the first *)
  in
  List.iter (fun t -> List.iter absorb (List.rev t.metrics)) ts;
  out
