(* Metric registry: named counters, gauges, log-scale histograms and span
   timers. A registry groups the metrics of one component instance (an
   engine, a broker, the SAX layer); exporters walk a registry — or every
   listed registry — and render the samples.

   Cost model: a counter increment is one mutable-int store, cheap enough
   for per-path and per-run call sites (innermost loops accumulate into a
   local and flush once). Span timers read the monotonic clock only when
   the caller decides to time, so a disabled engine pays nothing. *)

let now_ns : unit -> int64 = Monotonic_clock.now

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

(* Log-scale (powers of two) histogram: bucket [i] counts observations with
   value <= 2^i, the last bucket is unbounded. 32 buckets cover every
   quantity we track (chain lengths, list sizes, nanoseconds). *)
let histogram_buckets = 32

type histogram = {
  h_name : string;
  h_help : string;
  mutable h_count : int;
  mutable h_sum : float;
  h_counts : int array;  (* per-bucket (non-cumulative) counts *)
}

type span = { s_name : string; s_help : string; mutable s_ns : int64 }

type metric =
  | Metric_counter of counter
  | Metric_gauge of gauge
  | Metric_histogram of histogram
  | Metric_span of span

type t = { scope : string; mutable metrics : metric list (* reversed *) }

(* Listed registries, in creation order; exporters can render all of them.
   Scopes are uniquified ("engine", "engine#2", ...) so exports stay
   unambiguous when several instances of one component coexist. *)
let listed : t list ref = ref []
let scope_counts : (string, int) Hashtbl.t = Hashtbl.create 8

let create ?(list = true) scope =
  let scope =
    if not list then scope
    else begin
      let n = match Hashtbl.find_opt scope_counts scope with Some n -> n | None -> 0 in
      Hashtbl.replace scope_counts scope (n + 1);
      if n = 0 then scope else Printf.sprintf "%s#%d" scope (n + 1)
    end
  in
  let t = { scope; metrics = [] } in
  if list then listed := t :: !listed;
  t

let scope t = t.scope
let registries () = List.rev !listed

let register t m = t.metrics <- m :: t.metrics

let reset t =
  List.iter
    (function
      | Metric_counter c -> c.c_value <- 0
      | Metric_gauge g -> g.g_value <- 0.
      | Metric_histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.;
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0
      | Metric_span s -> s.s_ns <- 0L)
    t.metrics

module Counter = struct
  type t = counter

  let make ?registry ?(help = "") name =
    let c = { c_name = name; c_help = help; c_value = 0 } in
    (match registry with Some r -> register r (Metric_counter c) | None -> ());
    c

  let incr c = c.c_value <- c.c_value + 1
  let add c n = c.c_value <- c.c_value + n
  let get c = c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let make ?registry ?(help = "") name =
    let g = { g_name = name; g_help = help; g_value = 0. } in
    (match registry with Some r -> register r (Metric_gauge g) | None -> ());
    g

  let set g v = g.g_value <- v
  let set_max g v = if v > g.g_value then g.g_value <- v
  let get g = g.g_value
end

module Histogram = struct
  type t = histogram

  let make ?registry ?(help = "") name =
    let h =
      { h_name = name; h_help = help; h_count = 0; h_sum = 0.;
        h_counts = Array.make histogram_buckets 0 }
    in
    (match registry with Some r -> register r (Metric_histogram h) | None -> ());
    h

  (* Index of the smallest bucket bound 2^i >= v (v <= 1 lands in bucket 0,
     values past the last bound in the last bucket). *)
  let bucket_index v =
    if v <= 1 then 0
    else begin
      let i = ref 1 and bound = ref 2 in
      while v > !bound && !i < histogram_buckets - 1 do
        incr i;
        bound := !bound * 2
      done;
      !i
    end

  let observe h v =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. float_of_int v;
    let i = bucket_index v in
    h.h_counts.(i) <- h.h_counts.(i) + 1

  let count h = h.h_count
  let sum h = h.h_sum

  (* (upper bound, cumulative count) pairs; the last bound is
     [infinity]. Trailing all-zero buckets beyond the last observation are
     elided (the unbounded bucket always remains). *)
  let cumulative h =
    let last_used = ref 0 in
    Array.iteri (fun i n -> if n > 0 then last_used := i) h.h_counts;
    let stop = min (!last_used + 1) (histogram_buckets - 1) in
    let acc = ref 0 and out = ref [] in
    for i = 0 to stop - 1 do
      acc := !acc + h.h_counts.(i);
      out := (ldexp 1. i, !acc) :: !out
    done;
    List.rev ((infinity, h.h_count) :: !out)
end

module Span = struct
  type t = span

  let make ?registry ?(help = "") name =
    let s = { s_name = name; s_help = help; s_ns = 0L } in
    (match registry with Some r -> register r (Metric_span s) | None -> ());
    s

  let now = now_ns
  let add s ns = s.s_ns <- Int64.add s.s_ns ns
  let ns s = s.s_ns
  let ms s = Int64.to_float s.s_ns /. 1e6

  let time s f =
    let t0 = now () in
    let r = f () in
    add s (Int64.sub (now ()) t0);
    r
end

(* ------------------------------------------------------------------ *)
(* Sample view for exporters *)

type value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of { count : int; sum : float; buckets : (float * int) list }
  | Sample_span of int64  (* accumulated nanoseconds *)

type sample = { name : string; help : string; value : value }

let sample_of = function
  | Metric_counter c ->
    { name = c.c_name; help = c.c_help; value = Sample_counter c.c_value }
  | Metric_gauge g -> { name = g.g_name; help = g.g_help; value = Sample_gauge g.g_value }
  | Metric_histogram h ->
    { name = h.h_name; help = h.h_help;
      value =
        Sample_histogram
          { count = h.h_count; sum = h.h_sum; buckets = Histogram.cumulative h } }
  | Metric_span s -> { name = s.s_name; help = s.s_help; value = Sample_span s.s_ns }

let samples t = List.rev_map sample_of t.metrics

let find_counter t name =
  List.find_map
    (function
      | Metric_counter c when c.c_name = name -> Some c.c_value
      | _ -> None)
    t.metrics

(* ------------------------------------------------------------------ *)
(* Merging: one registry summarizing many same-shaped instances (the
   sharded service merges its per-worker engine replicas this way). *)

let merge ?(list = false) ~scope ts =
  let out = create ~list scope in
  (* find-or-create by name, accumulating in first-seen order *)
  let by_name : (string, metric) Hashtbl.t = Hashtbl.create 16 in
  let absorb m =
    let mname =
      match m with
      | Metric_counter c -> c.c_name
      | Metric_gauge g -> g.g_name
      | Metric_histogram h -> h.h_name
      | Metric_span s -> s.s_name
    in
    match Hashtbl.find_opt by_name mname, m with
    | None, Metric_counter c ->
      let c' = { c with c_name = c.c_name } in
      Hashtbl.add by_name mname (Metric_counter c');
      register out (Metric_counter c')
    | None, Metric_gauge g ->
      let g' = { g with g_name = g.g_name } in
      Hashtbl.add by_name mname (Metric_gauge g');
      register out (Metric_gauge g')
    | None, Metric_histogram h ->
      let h' = { h with h_counts = Array.copy h.h_counts } in
      Hashtbl.add by_name mname (Metric_histogram h');
      register out (Metric_histogram h')
    | None, Metric_span s ->
      let s' = { s with s_name = s.s_name } in
      Hashtbl.add by_name mname (Metric_span s');
      register out (Metric_span s')
    | Some (Metric_counter acc), Metric_counter c -> acc.c_value <- acc.c_value + c.c_value
    | Some (Metric_gauge acc), Metric_gauge g ->
      (* gauges merge by maximum: the dominant use is high-water marks *)
      if g.g_value > acc.g_value then acc.g_value <- g.g_value
    | Some (Metric_histogram acc), Metric_histogram h ->
      acc.h_count <- acc.h_count + h.h_count;
      acc.h_sum <- acc.h_sum +. h.h_sum;
      Array.iteri (fun i n -> acc.h_counts.(i) <- acc.h_counts.(i) + n) h.h_counts
    | Some (Metric_span acc), Metric_span s -> acc.s_ns <- Int64.add acc.s_ns s.s_ns
    | Some _, _ -> ()  (* same name, different shape: keep the first *)
  in
  List.iter (fun t -> List.iter absorb (List.rev t.metrics)) ts;
  out
