(** Pf_obs — unified observability for the predfilter engines.

    A {!Registry} holds the named metrics of one component instance;
    {!Counter}, {!Gauge}, {!Histogram} and {!Span} are re-exported at the
    top level for terse call sites. {!Export} renders registries as
    console tables, JSON Lines or Prometheus text; {!Events} provides the
    per-subsystem Logs sources; {!Json} is the minimal JSON support the
    exporters and the benchmark results file share. *)

module Registry = Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge
module Histogram = Registry.Histogram
module Qhist = Registry.Qhist
module Span = Registry.Span
module Json = Json
module Export = Export
module Trace = Trace
module Events = Events
