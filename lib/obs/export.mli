(** Exporters over metric registries: console tables, JSON Lines and
    Prometheus v0 text exposition. *)

type format = Console | Jsonl | Prometheus

val format_of_name : string -> format option
(** Accepts "console"/"table", "json"/"jsonl", "prom"/"prometheus". *)

val format_name : format -> string

val pp_console : Format.formatter -> Registry.t -> unit
val pp_console_all : Format.formatter -> unit -> unit

val jsonl : Registry.t -> string
(** One JSON object per metric, one per line:
    [{"scope":"engine","name":"occurrence_runs","type":"counter","value":17}].
    Histograms carry count, sum and cumulative buckets; spans carry
    nanoseconds and milliseconds. *)

val jsonl_all : unit -> string

val registry_json : Registry.t -> Json.t
(** Compact [name -> value] object snapshot (histograms as count/mean,
    spans as milliseconds) — the benchmark export format. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition; metric names are
    [predfilter_<scope>_<name>], spans become [..._seconds_total]
    counters. *)

val prometheus_all : unit -> string
(** Every listed registry, preceded by {!build_info}. *)

val version : string

val build_info : unit -> string
(** [predfilter_build_info] gauge exposition: constant 1 with [version]
    and [ocaml_version] labels. *)

val summary_line : Registry.t -> string
(** One-line digest (zeros elided) for example programs. *)

val print : format -> unit
(** Render every listed registry to stdout in the given format. *)
