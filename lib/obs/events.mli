(** Structured event layer: uniformly named Logs sources, one per
    subsystem ("predfilter.engine", "predfilter.broker", ...). *)

val src : ?doc:string -> string -> Logs.src
(** [src "engine"] is the memoized source named "predfilter.engine". *)

val log : ?doc:string -> string -> (module Logs.LOG)
(** [src] wrapped as a log module: [module Log = (val Events.log "x")]. *)

val enable : string -> bool
(** Set Debug level on the named predfilter source (short or full name),
    or on all of them with "all". False if nothing matched. *)

val known_sources : unit -> string list
(** Full names of every predfilter source, sorted. *)

val install_reporter : unit -> unit
(** Install a stderr format reporter (idempotent). *)
