(* Per-document tracing: one trace per filtered document, child spans per
   pipeline stage (parse, scan, match, occurrence, merge, deliver), each
   stamped with monotonic-clock bounds, the recording domain and GC
   minor/major-word deltas. Spans may be appended from several domains —
   the expression-sharded service runs one document on every worker at
   once — and are stitched back together by trace id: every span carries
   its trace's context, so the merge side only has to [finish] the
   context it was handed.

   The ambient context lives in domain-local storage. Instrumented code
   reads it once ([ambient ()]); when no trace is active the read is the
   only cost, so untraced runs stay on the fast path. *)

type span = {
  sp_id : int;
  sp_parent : int;  (* 0 = child of the root document span *)
  sp_name : string;
  sp_tid : int;  (* domain id that recorded the span *)
  sp_t0_ns : int64;
  sp_dur_ns : int64;
  sp_minor_words : float;
  sp_major_words : float;
}

type keep = [ `All | `Slowest of int ]

type trace = {
  tr_id : int;
  tr_label : string;
  tr_t0_ns : int64;
  tr_dur_ns : int64;
  tr_spans : span list;  (* reverse recording order *)
}

type t = {
  c_keep : keep;
  c_lock : Mutex.t;
  c_next_id : int Atomic.t;
  c_epoch_ns : int64;  (* clock origin; exported timestamps are relative *)
  mutable c_traces : trace list;  (* finish order, newest first *)
  mutable c_dropped : int;
}

type ctx = {
  cx_id : int;
  cx_label : string;
  cx_collector : t;
  cx_t0_ns : int64;
  cx_next_span : int Atomic.t;
  cx_lock : Mutex.t;
  mutable cx_spans : span list;
}

let create ?(keep = `All) () =
  {
    c_keep = keep;
    c_lock = Mutex.create ();
    c_next_id = Atomic.make 1;
    c_epoch_ns = Registry.now_ns ();
    c_traces = [];
    c_dropped = 0;
  }

let start ?(label = "doc") t =
  {
    cx_id = Atomic.fetch_and_add t.c_next_id 1;
    cx_label = label;
    cx_collector = t;
    cx_t0_ns = Registry.now_ns ();
    cx_next_span = Atomic.make 1;
    cx_lock = Mutex.create ();
    cx_spans = [];
  }

let trace_id ctx = ctx.cx_id

let add_span ctx sp =
  Mutex.lock ctx.cx_lock;
  ctx.cx_spans <- sp :: ctx.cx_spans;
  Mutex.unlock ctx.cx_lock

(* ------------------------------------------------------------------ *)
(* Ambient context: the per-domain current trace and parent span. *)

type frame = { f_ctx : ctx; mutable f_parent : int }

let ambient_key : frame option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_ambient ctx = Domain.DLS.get ambient_key := Some { f_ctx = ctx; f_parent = 0 }
let clear_ambient () = Domain.DLS.get ambient_key := None

let ambient () =
  match !(Domain.DLS.get ambient_key) with
  | None -> None
  | Some f -> Some f.f_ctx

let record_span ctx ~parent name f =
  let sp_id = Atomic.fetch_and_add ctx.cx_next_span 1 in
  let g0 = Gc.quick_stat () in
  let t0 = Registry.now_ns () in
  let finally () =
    let t1 = Registry.now_ns () in
    let g1 = Gc.quick_stat () in
    add_span ctx
      {
        sp_id;
        sp_parent = parent;
        sp_name = name;
        sp_tid = (Domain.self () :> int);
        sp_t0_ns = t0;
        sp_dur_ns = Int64.sub t1 t0;
        sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      }
  in
  Fun.protect ~finally f

let with_span name f =
  let r = Domain.DLS.get ambient_key in
  match !r with
  | None -> f ()
  | Some fr ->
    let ctx = fr.f_ctx in
    let saved = fr.f_parent in
    let sp_id = Atomic.fetch_and_add ctx.cx_next_span 1 in
    fr.f_parent <- sp_id;
    let g0 = Gc.quick_stat () in
    let t0 = Registry.now_ns () in
    let finally () =
      let t1 = Registry.now_ns () in
      let g1 = Gc.quick_stat () in
      fr.f_parent <- saved;
      add_span ctx
        {
          sp_id;
          sp_parent = saved;
          sp_name = name;
          sp_tid = (Domain.self () :> int);
          sp_t0_ns = t0;
          sp_dur_ns = Int64.sub t1 t0;
          sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
        }
    in
    Fun.protect ~finally f

let span ctx name f =
  (* explicit-ctx variant for domains where the ambient context is not
     set (e.g. the merge side of the expression-sharded service): nests
     under the ambient parent only when the ambient trace IS this one *)
  let r = Domain.DLS.get ambient_key in
  match !r with
  | Some fr when fr.f_ctx == ctx -> with_span name f
  | _ -> record_span ctx ~parent:0 name f

(* ------------------------------------------------------------------ *)
(* Retention *)

let finish ctx =
  let t = ctx.cx_collector in
  let tr =
    {
      tr_id = ctx.cx_id;
      tr_label = ctx.cx_label;
      tr_t0_ns = ctx.cx_t0_ns;
      tr_dur_ns = Int64.sub (Registry.now_ns ()) ctx.cx_t0_ns;
      tr_spans = ctx.cx_spans;
    }
  in
  Mutex.lock t.c_lock;
  (match t.c_keep with
  | `All -> t.c_traces <- tr :: t.c_traces
  | `Slowest n when n <= 0 -> t.c_dropped <- t.c_dropped + 1
  | `Slowest n ->
    t.c_traces <- tr :: t.c_traces;
    if List.length t.c_traces > n then begin
      (* drop the fastest retained trace; n is small, linear scan is fine *)
      let fastest =
        List.fold_left
          (fun acc x -> if Int64.compare x.tr_dur_ns acc.tr_dur_ns < 0 then x else acc)
          tr t.c_traces
      in
      t.c_traces <- List.filter (fun x -> x != fastest) t.c_traces;
      t.c_dropped <- t.c_dropped + 1
    end);
  Mutex.unlock t.c_lock

let traces t =
  Mutex.lock t.c_lock;
  let ts = t.c_traces in
  Mutex.unlock t.c_lock;
  List.rev ts

let dropped t = t.c_dropped

let slowest t =
  match traces t with
  | [] -> None
  | x :: xs ->
    Some
      (List.fold_left
         (fun acc y -> if Int64.compare y.tr_dur_ns acc.tr_dur_ns > 0 then y else acc)
         x xs)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (catapult format, Perfetto-loadable) *)

let us_of epoch ns = Int64.to_float (Int64.sub ns epoch) /. 1e3

let chrome_events epoch tr =
  let meta =
    Json.Obj
      [
        "name", Json.String "process_name";
        "ph", Json.String "M";
        "pid", Json.Int tr.tr_id;
        "tid", Json.Int 0;
        "args", Json.Obj [ "name", Json.String tr.tr_label ];
      ]
  in
  let root =
    Json.Obj
      [
        "name", Json.String "document";
        "ph", Json.String "X";
        "ts", Json.Float (us_of epoch tr.tr_t0_ns);
        "dur", Json.Float (Int64.to_float tr.tr_dur_ns /. 1e3);
        "pid", Json.Int tr.tr_id;
        "tid", Json.Int 0;
        "args", Json.Obj [ "label", Json.String tr.tr_label ];
      ]
  in
  let span_event sp =
    Json.Obj
      [
        "name", Json.String sp.sp_name;
        "ph", Json.String "X";
        "ts", Json.Float (us_of epoch sp.sp_t0_ns);
        "dur", Json.Float (Int64.to_float sp.sp_dur_ns /. 1e3);
        "pid", Json.Int tr.tr_id;
        "tid", Json.Int sp.sp_tid;
        "args",
        Json.Obj
          [
            "span", Json.Int sp.sp_id;
            "parent", Json.Int sp.sp_parent;
            "gc_minor_words", Json.Float sp.sp_minor_words;
            "gc_major_words", Json.Float sp.sp_major_words;
          ];
      ]
  in
  meta :: root :: List.rev_map span_event tr.tr_spans

let to_chrome_json t =
  let trs = traces t in
  Json.Obj
    [
      "displayTimeUnit", Json.String "ms";
      "traceEvents", Json.List (List.concat_map (chrome_events t.c_epoch_ns) trs);
    ]

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_json t)))
