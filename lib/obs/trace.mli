(** Per-document tracing.

    One {!ctx} is created per filtered document and threaded (or set as
    the domain-ambient context) through the pipeline; instrumented stages
    record child {!span}s carrying monotonic-clock bounds, the recording
    domain id and GC minor/major-word deltas. Spans recorded on different
    domains against the same context are stitched by its trace id, so the
    expression-sharded service — where every worker touches every
    document — yields one coherent trace per document. Finished traces
    accumulate in a collector with a retention policy and export as
    Chrome trace-event JSON (Perfetto-loadable). *)

type span = {
  sp_id : int;
  sp_parent : int;  (** 0 = child of the root document span *)
  sp_name : string;
  sp_tid : int;  (** domain id that recorded the span *)
  sp_t0_ns : int64;
  sp_dur_ns : int64;
  sp_minor_words : float;
  sp_major_words : float;
}

type keep = [ `All | `Slowest of int ]

type trace = {
  tr_id : int;
  tr_label : string;
  tr_t0_ns : int64;
  tr_dur_ns : int64;
  tr_spans : span list;  (** reverse recording order *)
}

type t
(** Collector: owns finished traces. Thread-safe. *)

type ctx
(** One in-flight document trace. Span recording is thread-safe; call
    {!finish} exactly once, after the last span. *)

val create : ?keep:keep -> unit -> t
(** [keep] defaults to [`All]; [`Slowest n] retains only the n slowest
    finished traces (by end-to-end duration) — the exemplar ring. *)

val start : ?label:string -> t -> ctx
(** Open a trace (dense id, clock started). [label] names the document. *)

val trace_id : ctx -> int

val finish : ctx -> unit
(** Close the root span and move the trace into the collector, subject to
    its retention policy. *)

(** {1 Ambient context}

    The current trace is stored in domain-local storage so deeply nested
    pipeline stages need no extra parameters. When no ambient context is
    set, {!with_span} runs its thunk with no further cost. *)

val set_ambient : ctx -> unit
val clear_ambient : unit -> unit
val ambient : unit -> ctx option

val with_span : string -> (unit -> 'a) -> 'a
(** Record a child span of the ambient trace around the thunk (nested
    calls stitch parent ids); a no-op wrapper when no trace is ambient.
    The span is recorded even if the thunk raises. *)

val span : ctx -> string -> (unit -> 'a) -> 'a
(** Like {!with_span} but against an explicit context — for domains where
    the ambient context is not set (e.g. a merge worker holding the ctx
    of another domain's document). *)

(** {1 Reading the collector} *)

val traces : t -> trace list
(** Finished traces, oldest first. *)

val slowest : t -> trace option
val dropped : t -> int
(** Traces discarded by a [`Slowest n] policy. *)

(** {1 Chrome trace-event export} *)

val to_chrome_json : t -> Json.t
(** Catapult JSON: one process per trace (pid = trace id, named by its
    label), one complete ("X") event per span with µs timestamps
    relative to collector creation, GC deltas in [args]. *)

val write_chrome : t -> string -> unit
