(** Metric registry: named counters, gauges, log-scale histograms and span
    timers.

    A registry groups the metrics of one component instance; create one per
    engine/broker and register metrics into it. Metrics made without a
    registry still work but are never exported — useful for components that
    keep private counters when the caller supplies none. *)

type t

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

val create : ?list:bool -> string -> t
(** [create scope] makes a registry named [scope]. When [list] (default
    true) it is appended to the global registry list ({!registries}) and
    its scope is uniquified ("engine", "engine#2", ...). *)

val scope : t -> string
val registries : unit -> t list
(** Every listed registry, in creation order. *)

val reset : t -> unit
(** Zero every metric in the registry (counters, gauges, histograms and
    span accumulators alike). *)

module Counter : sig
  type registry := t
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val name : t -> string
end

module Gauge : sig
  type registry := t
  type t

  type merge_policy = Max | Sum
  (** How replica instances combine under {!Registry.merge}: [Max] for
      high-water marks, [Sum] for per-replica sizes whose total matters
      (e.g. live cache entries held across worker replicas). *)

  val make : ?registry:registry -> ?help:string -> ?merge:merge_policy -> string -> t
  (** [merge] defaults to [Max]. *)

  val set : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the running maximum: sets only if the new value is greater. *)

  val get : t -> float
  val merge_policy : t -> merge_policy
end

module Histogram : sig
  type registry := t
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  (** Log-scale histogram with power-of-two bucket bounds
      1, 2, 4, ..., 2^30, +inf. *)

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> float

  val cumulative : t -> (float * int) list
  (** (upper bound, cumulative count) pairs, Prometheus-style; the last
      bound is [infinity] and carries the total count. *)

  val bucket_index : int -> int
  (** Bucket an observation lands in (exposed for tests). *)
end

module Qhist : sig
  type registry := t
  type t
  (** Log-linear ("HDR-style") quantile histogram: each power-of-two range
      splits into 32 linear sub-buckets, so any non-negative int is
      recorded with relative error <= 1/32 (values below 32 exactly) and
      p50/p90/p99/p999 readouts are upper bounds within that error. The
      bucket array is fixed-size; instances merge by element-wise
      addition under {!Registry.merge}, which makes per-replica latency
      distributions combinable without losing the tails. *)

  val make : ?registry:registry -> ?help:string -> string -> t

  val observe : t -> int -> unit
  (** Record one observation (negative values clamp to 0). *)

  val count : t -> int
  val sum : t -> float
  val min_value : t -> int
  val max_value : t -> int

  val quantile : t -> float -> int
  (** [quantile q p] (0 < p <= 1): the representative value of the bucket
      holding the order statistic of rank ceil(p * count); within a
      factor of 1 + 1/32 above the true quantile. 0 when empty. *)

  val cumulative : t -> (float * int) list
  (** (upper bound, cumulative count) pairs over occupied buckets,
      Prometheus-style; the terminal bound is [infinity]. *)

  val bucket_index : int -> int
  (** Bucket an observation lands in (exposed for tests). *)

  val bucket_value : int -> int
  (** Largest value the bucket holds — its representative (for tests). *)
end

module Span : sig
  type registry := t
  type t
  (** A span timer accumulates elapsed monotonic nanoseconds for one
      pipeline stage. Callers decide when to read the clock, so an
      untimed configuration pays no clock cost. *)

  val make : ?registry:registry -> ?help:string -> string -> t
  val now : unit -> int64
  val add : t -> int64 -> unit
  val ns : t -> int64
  val ms : t -> float
  val time : t -> (unit -> 'a) -> 'a
end

(** {1 Sample view (for exporters)} *)

type value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of { count : int; sum : float; buckets : (float * int) list }
  | Sample_span of int64  (** accumulated nanoseconds *)
  | Sample_quantiles of {
      count : int;
      sum : float;
      min : int;
      max : int;
      p50 : int;
      p90 : int;
      p99 : int;
      p999 : int;
      buckets : (float * int) list;  (** cumulative, occupied buckets only *)
    }

type sample = { name : string; help : string; value : value }

val samples : t -> sample list
(** Registration order. *)

val find_counter : t -> string -> int option
(** Value of the named counter, if registered. *)

val find_gauge : t -> string -> float option
(** Value of the named gauge, if registered. *)

val merge : ?list:bool -> scope:string -> t list -> t
(** [merge ~scope ts] builds a registry summarizing same-shaped instances
    (e.g. the engine replicas of a sharded service): metrics are grouped by
    name in first-seen order; counters, histograms, quantile histograms
    and spans sum, gauges follow their declared {!Gauge.merge_policy}
    ([Max] for high-water marks, [Sum] for sizes). The result is a
    snapshot — detached from the inputs — and unlisted unless [list] is
    true. Merging is associative: merging merged registries gives the
    same samples as merging the originals in one pass. *)
