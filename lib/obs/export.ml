(* Exporters over metric registries: pretty console tables, JSON Lines and
   Prometheus v0 text exposition. Each renders one registry or every
   listed registry. *)

type format = Console | Jsonl | Prometheus

let format_of_name = function
  | "console" | "table" -> Some Console
  | "json" | "jsonl" -> Some Jsonl
  | "prom" | "prometheus" -> Some Prometheus
  | _ -> None

let format_name = function
  | Console -> "console"
  | Jsonl -> "json"
  | Prometheus -> "prom"

(* ------------------------------------------------------------------ *)
(* Console *)

let pp_value fmt (v : Registry.value) =
  match v with
  | Registry.Sample_counter n -> Format.fprintf fmt "%d" n
  | Registry.Sample_gauge g -> Format.fprintf fmt "%g" g
  | Registry.Sample_span ns -> Format.fprintf fmt "%.3f ms" (Int64.to_float ns /. 1e6)
  | Registry.Sample_histogram { count; sum; _ } ->
    if count = 0 then Format.fprintf fmt "(empty)"
    else Format.fprintf fmt "n=%d mean=%.1f" count (sum /. float_of_int count)
  | Registry.Sample_quantiles { count; p50; p99; max; _ } ->
    if count = 0 then Format.fprintf fmt "(empty)"
    else Format.fprintf fmt "n=%d p50=%d p99=%d max=%d" count p50 p99 max

let pp_console fmt reg =
  let samples = Registry.samples reg in
  Format.fprintf fmt "== metrics: %s ==@." (Registry.scope reg);
  let width =
    List.fold_left (fun w (s : Registry.sample) -> max w (String.length s.name)) 8 samples
  in
  List.iter
    (fun (s : Registry.sample) ->
      Format.fprintf fmt "  %-*s %a%s@." width s.name pp_value s.value
        (if s.help = "" then "" else "  (" ^ s.help ^ ")"))
    samples

let pp_console_all fmt () =
  List.iter (fun reg -> pp_console fmt reg) (Registry.registries ())

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_of_value (v : Registry.value) : (string * Json.t) list =
  match v with
  | Registry.Sample_counter n -> [ "type", Json.String "counter"; "value", Json.Int n ]
  | Registry.Sample_gauge g -> [ "type", Json.String "gauge"; "value", Json.Float g ]
  | Registry.Sample_span ns ->
    [ "type", Json.String "span";
      "ns", Json.Int (Int64.to_int ns);
      "ms", Json.Float (Int64.to_float ns /. 1e6) ]
  | Registry.Sample_histogram { count; sum; buckets } ->
    [ "type", Json.String "histogram";
      "count", Json.Int count;
      "sum", Json.Float sum;
      "buckets",
      Json.List
        (List.map
           (fun (le, n) ->
             Json.List [ (if Float.is_finite le then Json.Float le else Json.Null);
                         Json.Int n ])
           buckets) ]
  | Registry.Sample_quantiles { count; sum; min; max; p50; p90; p99; p999; buckets } ->
    [ "type", Json.String "quantiles";
      "count", Json.Int count;
      "sum", Json.Float sum;
      "min", Json.Int min;
      "max", Json.Int max;
      "p50", Json.Int p50;
      "p90", Json.Int p90;
      "p99", Json.Int p99;
      "p999", Json.Int p999;
      "buckets",
      Json.List
        (List.map
           (fun (le, n) ->
             Json.List [ (if Float.is_finite le then Json.Float le else Json.Null);
                         Json.Int n ])
           buckets) ]

let sample_json scope (s : Registry.sample) =
  Json.Obj
    (("scope", Json.String scope)
     :: ("name", Json.String s.name)
     :: json_of_value s.value)

(* One JSON object per line, one line per metric. *)
let jsonl reg =
  let scope = Registry.scope reg in
  String.concat ""
    (List.map
       (fun s -> Json.to_string (sample_json scope s) ^ "\n")
       (Registry.samples reg))

let jsonl_all () = String.concat "" (List.map jsonl (Registry.registries ()))

(* Compact single-object snapshot of a registry: name -> value. Histograms
   contribute count and mean; spans contribute milliseconds. Used by the
   benchmark export where one nested object per experiment reads better
   than a line stream. *)
let registry_json reg =
  Json.Obj
    (List.map
       (fun (s : Registry.sample) ->
         match s.value with
         | Registry.Sample_counter n -> s.name, Json.Int n
         | Registry.Sample_gauge g -> s.name, Json.Float g
         | Registry.Sample_span ns -> s.name ^ "_ms", Json.Float (Int64.to_float ns /. 1e6)
         | Registry.Sample_histogram { count; sum; _ } ->
           ( s.name,
             Json.Obj
               [ "count", Json.Int count;
                 "mean",
                 (if count = 0 then Json.Null else Json.Float (sum /. float_of_int count))
               ] )
         | Registry.Sample_quantiles { count; sum; min; max; p50; p90; p99; p999; _ } ->
           (* percentile readouts survive into the benchmark snapshot so
              BENCH_results.json diffs can gate on tail latency *)
           ( s.name,
             Json.Obj
               [ "count", Json.Int count;
                 "mean",
                 (if count = 0 then Json.Null else Json.Float (sum /. float_of_int count));
                 "min", Json.Int min;
                 "max", Json.Int max;
                 "p50", Json.Int p50;
                 "p90", Json.Int p90;
                 "p99", Json.Int p99;
                 "p999", Json.Int p999;
               ] ))
       (Registry.samples reg))

(* ------------------------------------------------------------------ *)
(* Prometheus v0 text exposition *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float f =
  if f = infinity then "+Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus_into buf reg =
  let scope = sanitize (Registry.scope reg) in
  List.iter
    (fun (s : Registry.sample) ->
      let full = Printf.sprintf "predfilter_%s_%s" scope (sanitize s.name) in
      let header typ =
        if s.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" full s.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" full typ)
      in
      match s.value with
      | Registry.Sample_counter n ->
        header "counter";
        Buffer.add_string buf (Printf.sprintf "%s %d\n" full n)
      | Registry.Sample_gauge g ->
        header "gauge";
        Buffer.add_string buf (Printf.sprintf "%s %s\n" full (prom_float g))
      | Registry.Sample_span ns ->
        (* accumulated stage time, exposed in seconds as the convention
           demands *)
        let full = full ^ "_seconds_total" in
        if s.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" full s.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" full);
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" full (prom_float (Int64.to_float ns /. 1e9)))
      | Registry.Sample_histogram { count; sum; buckets } ->
        header "histogram";
        List.iter
          (fun (le, n) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" full (prom_float le) n))
          buckets;
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" full (prom_float sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" full count)
      | Registry.Sample_quantiles { count; sum; buckets; _ } ->
        (* full histogram exposition — real cumulative _bucket series over
           the log-linear bounds, not a collapsed mean, so a server-side
           histogram_quantile() recovers p50/p99 within bucket error *)
        header "histogram";
        List.iter
          (fun (le, n) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" full (prom_float le) n))
          buckets;
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" full (prom_float sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" full count))
    (Registry.samples reg)

let prometheus reg =
  let buf = Buffer.create 1024 in
  prometheus_into buf reg;
  Buffer.contents buf

let version = "1.0.0"

(* Constant-1 gauge carrying build identity as labels, the idiom scrape
   dashboards join against (cf. prometheus_build_info). *)
let build_info () =
  Printf.sprintf
    "# HELP predfilter_build_info Build and runtime identity (value is always 1).\n\
     # TYPE predfilter_build_info gauge\n\
     predfilter_build_info{version=\"%s\",ocaml_version=\"%s\"} 1\n"
    version Sys.ocaml_version

let prometheus_all () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (build_info ());
  List.iter (prometheus_into buf) (Registry.registries ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

(* One-line digest for example programs: counters and span milliseconds,
   zeros elided. *)
let summary_line reg =
  let parts =
    List.filter_map
      (fun (s : Registry.sample) ->
        match s.value with
        | Registry.Sample_counter 0 -> None
        | Registry.Sample_counter n -> Some (Printf.sprintf "%s=%d" s.name n)
        | Registry.Sample_gauge g when g <> 0. -> Some (Printf.sprintf "%s=%g" s.name g)
        | Registry.Sample_gauge _ -> None
        | Registry.Sample_span 0L -> None
        | Registry.Sample_span ns ->
          Some (Printf.sprintf "%s=%.2fms" s.name (Int64.to_float ns /. 1e6))
        | Registry.Sample_histogram { count = 0; _ } -> None
        | Registry.Sample_histogram { count; sum; _ } ->
          Some (Printf.sprintf "%s[n=%d mean=%.1f]" s.name count (sum /. float_of_int count))
        | Registry.Sample_quantiles { count = 0; _ } -> None
        | Registry.Sample_quantiles { count; p50; p99; _ } ->
          Some (Printf.sprintf "%s[n=%d p50=%d p99=%d]" s.name count p50 p99))
      (Registry.samples reg)
  in
  Printf.sprintf "[%s] %s" (Registry.scope reg)
    (if parts = [] then "(no samples)" else String.concat " " parts)

let print format =
  match format with
  | Console -> pp_console_all Format.std_formatter ()
  | Jsonl -> print_string (jsonl_all ())
  | Prometheus -> print_string (prometheus_all ())
