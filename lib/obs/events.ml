(* Structured event layer: one Logs source per subsystem, uniformly named
   "predfilter.<subsystem>". Sources are memoized so a module can call
   [src] at initialization and tooling can look the same source up by
   name. *)

let sources : (string, Logs.src) Hashtbl.t = Hashtbl.create 8

let src ?doc name =
  match Hashtbl.find_opt sources name with
  | Some s -> s
  | None ->
    let s = Logs.Src.create ("predfilter." ^ name) ?doc in
    Hashtbl.add sources name s;
    s

let log ?doc name = Logs.src_log (src ?doc name)

(* Enable Debug-level tracing for one source (accepts either the short
   subsystem name or the full "predfilter.x" name) or for every predfilter
   source with "all". Returns false if no source matched. *)
let enable name =
  let matches s =
    let n = Logs.Src.name s in
    name = "all"
    || n = name
    || n = "predfilter." ^ name
  in
  let hit = ref false in
  List.iter
    (fun s ->
      if String.length (Logs.Src.name s) >= 10
         && String.sub (Logs.Src.name s) 0 10 = "predfilter"
         && matches s
      then begin
        Logs.Src.set_level s (Some Logs.Debug);
        hit := true
      end)
    (Logs.Src.list ());
  !hit

let known_sources () =
  List.filter_map
    (fun s ->
      let n = Logs.Src.name s in
      if String.length n >= 10 && String.sub n 0 10 = "predfilter" then Some n else None)
    (Logs.Src.list ())
  |> List.sort compare

let reporter_installed = ref false

let install_reporter () =
  if not !reporter_installed then begin
    reporter_installed := true;
    Logs.set_reporter (Logs.format_reporter ~dst:Format.err_formatter ())
  end
