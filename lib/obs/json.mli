(** Minimal JSON values: writing for the metric and benchmark exports,
    parsing for tests and smoke checks. Stdlib-only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialize as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)
