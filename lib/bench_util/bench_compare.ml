(* Regression detector over two BENCH_results.json files.

   Every numeric leaf of the per-experiment records is classified by its
   key: timing metrics (milliseconds, nanoseconds, docs/s, latency
   percentiles, speedups) regress only against runs from a comparable
   host and are gated by a relative threshold; scale-free metrics
   (hit ratios, GC words, identity checks) are deterministic properties
   of the code and gate unconditionally. Two runs are comparable when
   schema, scale and every experiment's recorded hardware_cores and
   shard_mode agree — otherwise timing diffs are meaningless and the
   comparison is refused (or, with [gate_timing] off, downgraded to
   warnings so a CI job can still gate the scale-free metrics against a
   baseline committed from a different machine). *)

module J = Pf_obs.Json

type verdict = {
  incomparable : string list;  (* schema/scale/host mismatches *)
  failures : string list;  (* gated regressions *)
  warnings : string list;  (* ungated timing drift, structural notes *)
}

let ok v = v.incomparable = [] && v.failures = []

(* ------------------------------------------------------------------ *)
(* Classification *)

type metric =
  | Timing_lower  (* lower is better: ms, ns, latency percentiles *)
  | Timing_higher  (* higher is better: docs/s, speedup *)
  | Free_lower  (* scale-free, lower is better: GC words *)
  | Free_higher  (* scale-free, higher is better: hit ratio *)
  | Must_hold  (* boolean invariant: true may not become false *)
  | Ignore

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_suffix ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

(* [path] is the slash-joined location of the leaf inside its experiment;
   [exp] the experiment name. The last path segment drives most rules. *)
let classify ~exp path =
  let base =
    match String.rindex_opt path '/' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  if base = "identical_matches" then Must_hold
  else if base = "hit_ratio" then Free_higher
  else if has_sub ~sub:"minor_words" base || has_sub ~sub:"major_words" base
          || has_sub ~sub:"gc_" base
  then Free_lower
  else if base = "probes_per_doc" || base = "hits_per_doc" then
    (* deterministic work profile of the predicate stage on the seeded
       workload: growth means the index got less selective *)
    Free_lower
  else if base = "physical_over_logical" || base = "covers_probes_per_expr" then
    (* deterministic sharing profile of the subsumption index on the
       seeded redundant workload: a rising ratio means lost sharing, a
       rising per-expression probe count means the candidate probe is
       drifting super-linear *)
    Free_lower
  else if has_sub ~sub:"docs_per_s" base || has_sub ~sub:"speedup" base then
    Timing_higher
  else if
    (* latency percentile readouts from quantile histograms *)
    List.mem base [ "p50"; "p90"; "p99"; "p999"; "mean"; "min"; "max" ]
    && (has_sub ~sub:"latency" path || has_sub ~sub:"_ns" path)
  then Timing_lower
  else if
    has_suffix ~suffix:"_ms" base || base = "ms"
    || has_sub ~sub:"ms_per" base
    || has_suffix ~suffix:"_ns" base
    || has_sub ~sub:"ns_per" base
    || has_sub ~sub:"us_per" base
    || has_suffix ~suffix:"_us" base
    || base = "elapsed_s"
  then Timing_lower
  else if exp = "micro" && not (has_sub ~sub:"/" path) then
    (* bechamel estimates are recorded directly under the test name *)
    Timing_lower
  else Ignore

(* ------------------------------------------------------------------ *)
(* Flattening *)

let rec leaves prefix (v : J.t) acc =
  match v with
  | J.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        leaves (if prefix = "" then k else prefix ^ "/" ^ k) v acc)
      acc fields
  | J.List items ->
    (* list positions are structural (series points, sweep rows); numeric
       elements inside them stay comparable by index *)
    snd
      (List.fold_left
         (fun (i, acc) v -> i + 1, leaves (Printf.sprintf "%s/%d" prefix i) v acc)
         (0, acc) items)
  | J.Int _ | J.Float _ | J.Bool _ -> (prefix, v) :: acc
  | J.Null | J.String _ -> acc

let number = function
  | J.Int n -> Some (float_of_int n)
  | J.Float f -> Some f
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparison *)

let experiments doc =
  match J.member "experiments" doc with
  | Some (J.Obj fields) -> fields
  | _ -> []

let string_member key doc =
  match J.member key doc with
  | Some (J.String s) -> Some s
  | Some (J.Int n) -> Some (string_of_int n)
  | _ -> None

(* hardware_cores / shard_mode / scale mismatches make timing diffs
   meaningless *)
let comparability old_doc new_doc =
  let top = ref [] in
  List.iter
    (fun key ->
      match string_member key old_doc, string_member key new_doc with
      | Some a, Some b when a <> b ->
        top := Printf.sprintf "%s: %S vs %S" key a b :: !top
      | _ -> ())
    [ "schema"; "scale" ];
  let olds = experiments old_doc and news = experiments new_doc in
  List.iter
    (fun (name, old_exp) ->
      match List.assoc_opt name news with
      | None -> ()
      | Some new_exp ->
        List.iter
          (fun key ->
            match
              ( J.member key old_exp |> Option.map J.to_string,
                J.member key new_exp |> Option.map J.to_string )
            with
            | Some a, Some b when a <> b ->
              top := Printf.sprintf "%s/%s: %s vs %s" name key a b :: !top
            | _ -> ())
          [ "hardware_cores"; "shard_mode" ])
    olds;
  List.rev !top

let compare_json ?(threshold = 0.30) ?(gate_timing = true) old_doc new_doc =
  let incomparable = comparability old_doc new_doc in
  let failures = ref [] and warnings = ref [] in
  let olds = experiments old_doc and news = experiments new_doc in
  List.iter
    (fun (exp, old_exp) ->
      match List.assoc_opt exp news with
      | None -> warnings := Printf.sprintf "%s: missing from new results" exp :: !warnings
      | Some new_exp ->
        let old_leaves = leaves "" old_exp [] in
        let new_leaves = leaves "" new_exp [] in
        List.iter
          (fun (path, old_v) ->
            match List.assoc_opt path new_leaves with
            | None -> ()
            | Some new_v -> (
              let cls = classify ~exp path in
              match cls, old_v, new_v with
              | Must_hold, J.Bool true, J.Bool false ->
                failures :=
                  Printf.sprintf "%s/%s: invariant broken (true -> false)" exp path
                  :: !failures
              | (Timing_lower | Timing_higher | Free_lower | Free_higher), _, _ -> (
                match number old_v, number new_v with
                | Some o, Some n when o > 0. ->
                  let rel =
                    match cls with
                    | Timing_lower | Free_lower -> (n -. o) /. o
                    | _ -> (o -. n) /. o
                  in
                  if rel > threshold then begin
                    let line =
                      Printf.sprintf "%s/%s: %g -> %g (%+.0f%%)" exp path o n
                        (100. *. rel)
                    in
                    let timing = cls = Timing_lower || cls = Timing_higher in
                    if timing && not gate_timing then
                      warnings := (line ^ " [timing, not gated]") :: !warnings
                    else failures := line :: !failures
                  end
                | _ -> ())
              | _ -> ()))
          old_leaves)
    olds;
  { incomparable; failures = List.rev !failures; warnings = List.rev !warnings }

(* ------------------------------------------------------------------ *)
(* CLI entry (bench/main.exe -- compare old.json new.json) *)

let load path =
  match J.of_string (In_channel.with_open_bin path In_channel.input_all) with
  | doc -> Ok doc
  | exception Sys_error msg -> Error msg
  | exception J.Parse_error msg -> Error (Printf.sprintf "%s: %s" path msg)

let run ?(threshold = 0.30) ?(gate_timing = true) old_path new_path =
  match load old_path, load new_path with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "compare: %s\n" msg;
    2
  | Ok old_doc, Ok new_doc ->
    let v = compare_json ~threshold ~gate_timing old_doc new_doc in
    List.iter (fun w -> Printf.printf "warn: %s\n" w) v.warnings;
    if v.incomparable <> [] then begin
      List.iter
        (fun line -> Printf.printf "incomparable: %s\n" line)
        v.incomparable;
      if gate_timing then begin
        Printf.printf
          "results come from incomparable hosts/configurations; re-run the \
           baseline on this host or pass --gate-timing off\n";
        3
      end
      else begin
        Printf.printf
          "hosts differ; timing metrics were reported as warnings only\n";
        if v.failures = [] then 0
        else begin
          List.iter (fun line -> Printf.printf "REGRESSION %s\n" line) v.failures;
          Printf.printf "%d regression(s) beyond %.0f%%\n" (List.length v.failures)
            (100. *. threshold);
          1
        end
      end
    end
    else if v.failures = [] then begin
      Printf.printf "compare: no regressions beyond %.0f%% (%s vs %s)\n"
        (100. *. threshold) old_path new_path;
      0
    end
    else begin
      List.iter (fun line -> Printf.printf "REGRESSION %s\n" line) v.failures;
      Printf.printf "%d regression(s) beyond %.0f%%\n" (List.length v.failures)
        (100. *. threshold);
      1
    end
