(** Regression detector over two [BENCH_results.json] files.

    Numeric leaves are classified by key: timing metrics (ms/ns/docs-per-s/
    latency percentiles/speedups) gate only between comparable hosts;
    scale-free metrics (hit ratios, GC words, match-identity booleans)
    gate unconditionally. Runs are comparable when schema, scale and each
    experiment's [hardware_cores]/[shard_mode] agree. *)

type verdict = {
  incomparable : string list;  (** schema/scale/host mismatches *)
  failures : string list;  (** gated regressions *)
  warnings : string list;  (** ungated timing drift, structural notes *)
}

val ok : verdict -> bool

val compare_json :
  ?threshold:float -> ?gate_timing:bool -> Pf_obs.Json.t -> Pf_obs.Json.t -> verdict
(** [compare_json old new]: [threshold] is the relative regression bound
    (default 0.30); with [gate_timing] false (default true), timing
    regressions and host mismatches become warnings and only scale-free
    metrics gate. *)

val run : ?threshold:float -> ?gate_timing:bool -> string -> string -> int
(** [run old_path new_path] loads, compares and reports to stdout.
    Returns the intended exit code: 0 clean, 1 regressions, 2 unreadable
    input, 3 incomparable hosts (with [gate_timing]). *)
