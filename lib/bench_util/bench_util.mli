(** Experiment harness utilities: timing, statistics and paper-style table
    output. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once and returns its result with the elapsed
    wall-clock seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Elapsed milliseconds. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y) pairs, e.g. (#XPEs, ms) *)
}

val print_table :
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit
(** Render one experiment as an aligned text table: one row per x value,
    one column per series — the textual equivalent of one paper figure. *)

val print_kv : title:string -> (string * string) list -> unit
(** Render a small key/value block (setup parameters, summary counts). *)

val mean : float list -> float
val stddev : float list -> float

(** {1 Engine adapters}

    A uniform interface over the three filtering engines so experiment
    drivers can sweep algorithms. *)

type algorithm = {
  name : string;
  add : Pf_xpath.Ast.path -> unit;
  finish_build : unit -> unit;
  match_doc : Pf_xml.Tree.t -> int;  (** number of matched expressions *)
  metrics : Pf_obs.Registry.t;  (** the engine instance's metric registry *)
}

val of_filter : name:string -> Pf_intf.filter -> algorithm
(** Adapter over any {!Pf_intf.FILTER} engine (one fresh instance). *)

val filter_of_name :
  ?collect_stats:bool ->
  ?path_cache:bool ->
  ?stream:Pf_core.Engine.ingest ->
  string ->
  Pf_intf.filter option
(** Resolve an engine name — a predicate-engine variant (basic, basic-pc,
    basic-pc-ap, shared) or a baseline (yfilter, index-filter) — to its
    {!Pf_intf.filter} module. [collect_stats], [path_cache] and [stream]
    apply to predicate-engine variants only (the baselines ignore them;
    validate with {!Pf_core.Expr_index.variant_of_name} if that
    matters). *)

val predicate_engine :
  ?variant:Pf_core.Expr_index.variant ->
  ?attr_mode:Pf_core.Engine.attr_mode ->
  ?path_cache:bool ->
  unit ->
  algorithm
(** Fresh predicate engine; name reflects variant (and attribute mode when
    [Postponed], and a [-cache] suffix with [path_cache:true]). *)

val yfilter : unit -> algorithm
val index_filter : unit -> algorithm

val all_paper_algorithms : unit -> algorithm list
(** basic, basic-pc, basic-pc-ap, yfilter, index-filter — the Figure 6
    line-up (fresh instances). *)

val filter_time_ms : ?trials:int -> algorithm -> Pf_xml.Tree.t list -> float
(** Total filtering time for a document set, milliseconds, averaged per
    document (the paper's metric: parsing is separate and reported
    negligible; here documents are pre-parsed trees). Reports the minimum
    over [trials] passes (default 3) to suppress scheduling noise; the
    first pass doubles as warm-up. *)
