let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

let time_ms f =
  let r, s = time f in
  r, s *. 1000.

type series = {
  label : string;
  points : (float * float) list;
}

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float (List.length l)

let stddev = function
  | [] | [ _ ] -> 0.
  | l ->
    let m = mean l in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.) l))

let print_table ~title ~x_label ~y_label series =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "   (%s; cell unit: %s)\n" x_label y_label;
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let col_width =
    List.fold_left (fun w s -> max w (String.length s.label + 2)) 12 series
  in
  Printf.printf "%12s" x_label;
  List.iter (fun s -> Printf.printf "%*s" col_width s.label) series;
  print_newline ();
  List.iter
    (fun x ->
      if Float.is_integer x && Float.abs x < 1e15 then Printf.printf "%12.0f" x
      else Printf.printf "%12.3f" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some y -> Printf.printf "%*.3f" col_width y
          | None -> Printf.printf "%*s" col_width "-")
        series;
      print_newline ())
    xs;
  flush stdout

let print_kv ~title kvs =
  Printf.printf "\n-- %s --\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-32s %s\n" k v) kvs;
  flush stdout

type algorithm = {
  name : string;
  add : Pf_xpath.Ast.path -> unit;
  finish_build : unit -> unit;
  match_doc : Pf_xml.Tree.t -> int;
  metrics : Pf_obs.Registry.t;
}

let of_filter ~name (filter : Pf_intf.filter) =
  let (module F) = filter in
  let inst = F.create () in
  {
    name;
    add = (fun p -> ignore (F.add inst p));
    finish_build = ignore;
    match_doc = (fun doc -> List.length (F.match_document inst doc));
    metrics = F.metrics inst;
  }

let filter_of_name ?collect_stats ?path_cache ?stream name : Pf_intf.filter option =
  match Pf_core.Expr_index.variant_of_name name with
  | Some variant ->
    Some
      (Pf_core.Engine.filter ~variant ?collect_stats ?path_cache ?stream ()
        :> Pf_intf.filter)
  | None -> (
    (* the baselines have no path cache or streaming mode; callers
       validating --path-cache / --stream check Expr_index.variant_of_name
       before resolving *)
    match name with
    | "yfilter" -> Some (module Pf_yfilter.Yfilter)
    | "index-filter" -> Some (module Pf_indexfilter.Index_filter)
    | _ -> None)

let predicate_engine ?(variant = Pf_core.Expr_index.Access_predicate)
    ?(attr_mode = Pf_core.Engine.Inline) ?(path_cache = false) () =
  let name =
    let base = Pf_core.Expr_index.variant_name variant in
    let base =
      match attr_mode with
      | Pf_core.Engine.Inline -> base
      | Pf_core.Engine.Postponed -> base ^ "-sp"
    in
    if path_cache then base ^ "-cache" else base
  in
  of_filter ~name
    (Pf_core.Engine.filter ~variant ~attr_mode ~path_cache () :> Pf_intf.filter)

let yfilter () = of_filter ~name:"yfilter" (module Pf_yfilter.Yfilter)
let index_filter () = of_filter ~name:"index-filter" (module Pf_indexfilter.Index_filter)

let all_paper_algorithms () =
  [
    predicate_engine ~variant:Pf_core.Expr_index.Basic ();
    predicate_engine ~variant:Pf_core.Expr_index.Prefix_covering ();
    predicate_engine ~variant:Pf_core.Expr_index.Access_predicate ();
    yfilter ();
    index_filter ();
  ]

let filter_time_ms ?(trials = 3) algo docs =
  let n = List.length docs in
  let once () =
    let (), ms =
      time_ms (fun () -> List.iter (fun d -> ignore (algo.match_doc d)) docs)
    in
    ms /. float (max 1 n)
  in
  (* minimum of a few trials: robust against scheduling noise on a shared
     machine, and the first trial doubles as warm-up *)
  let rec go best k = if k = 0 then best else go (Float.min best (once ())) (k - 1) in
  go (once ()) (max 0 (trials - 1))
