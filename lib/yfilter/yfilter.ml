open Pf_xpath

(* NFA states. Construction is a trie over step symbols, so every
   (state, symbol) pair has at most one target; non-determinism arises at
   run time (a tag event can follow both its tag edge and the star edge,
   and loop states stay active). A descendant step [//t] contributes two
   symbols: a loop state (star self-loop, entered by epsilon-closure when
   its parent activates) followed by the test edge.

   Tag names are interned through the global {!Pf_xml.Symbol} table so
   that executing one element event resolves its tag once (a cached
   lookup), not once per active state — and edges share symbols with the
   predicate engines instead of keeping a private table. *)
type state = {
  id : int;
  tag_edges : (int, int) Hashtbl.t;  (* tag symbol -> target state *)
  mutable star_edge : int;  (* -1 = none *)
  mutable loop_child : int;  (* -1 = none; epsilon-reachable loop state *)
  is_loop : bool;
  mutable plain_sids : int list;  (* accepting, no attribute filters *)
  mutable filter_sids : int list;  (* accepting, needs the postponed check *)
}

(* Execution counters: [transitions] counts NFA transition rounds (one per
   element event with a live active set), [activations] state activations
   including epsilon-closure — the YFilter analogue of the predicate
   engine's probes, for apples-to-apples stage comparisons. *)
type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  transitions : Pf_obs.Counter.t;
  activations : Pf_obs.Counter.t;
  matched : Pf_obs.Counter.t;
  latency : Pf_obs.Qhist.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "yfilter" in
  {
    registry;
    documents = Pf_obs.Counter.make ~registry "documents" ~help:"documents processed";
    transitions =
      Pf_obs.Counter.make ~registry "nfa_transitions"
        ~help:"NFA transition rounds (element events with a live active set)";
    activations =
      Pf_obs.Counter.make ~registry "state_activations"
        ~help:"NFA states activated, including epsilon-closure";
    matched =
      Pf_obs.Counter.make ~registry "matches" ~help:"expression matches reported";
    latency =
      Pf_obs.Qhist.make ~registry "doc_latency_ns"
        ~help:"end-to-end per-document match latency, nanoseconds";
  }

type t = {
  mutable states : state array;
  mutable n_states : int;
  mutable exprs : Ast.path array;  (* sid -> expression *)
  mutable n_exprs : int;
  mutable removed : bool array;  (* sid -> unregistered (sids are not reused) *)
  m : metrics;
  (* run-time scratch *)
  mutable set_stamp : int array;  (* state id -> set epoch *)
  mutable set_epoch : int;
  mutable sid_stamp : int array;  (* sid -> doc epoch *)
  mutable doc_epoch : int;
}

let new_state t ~is_loop =
  if t.n_states >= Array.length t.states then begin
    let bigger =
      Array.make (max 16 (2 * Array.length t.states))
        { id = -1; tag_edges = Hashtbl.create 1; star_edge = -1; loop_child = -1;
          is_loop = false; plain_sids = []; filter_sids = [] }
    in
    Array.blit t.states 0 bigger 0 t.n_states;
    t.states <- bigger
  end;
  let s =
    { id = t.n_states; tag_edges = Hashtbl.create 2; star_edge = -1; loop_child = -1;
      is_loop; plain_sids = []; filter_sids = [] }
  in
  t.states.(t.n_states) <- s;
  t.n_states <- t.n_states + 1;
  s

let create () =
  let t =
    {
      states = [||];
      n_states = 0;
      exprs = [||];
      n_exprs = 0;
      removed = [||];
      m = make_metrics ();
      set_stamp = [||];
      set_epoch = 0;
      sid_stamp = [||];
      doc_epoch = 0;
    }
  in
  ignore (new_state t ~is_loop:false);  (* state 0: initial *)
  t

let expression_count t = t.n_exprs
let state_count t = t.n_states
let metrics t = t.m.registry

let symbol_find tag =
  match Pf_xml.Symbol.find tag with Some s -> s | None -> -1

(* Follow (or create) the loop child of [s]. *)
let loop_of t s =
  if s.loop_child >= 0 then t.states.(s.loop_child)
  else begin
    let l = new_state t ~is_loop:true in
    s.loop_child <- l.id;
    l
  end

let tag_target t s tag =
  let sym = Pf_xml.Symbol.intern tag in
  match Hashtbl.find_opt s.tag_edges sym with
  | Some id -> t.states.(id)
  | None ->
    let n = new_state t ~is_loop:false in
    Hashtbl.add s.tag_edges sym n.id;
    n

let star_target t s =
  if s.star_edge >= 0 then t.states.(s.star_edge)
  else begin
    let n = new_state t ~is_loop:false in
    s.star_edge <- n.id;
    n
  end

let add t (p : Ast.path) =
  if not (Ast.is_single_path p) then
    raise (Pf_intf.Unsupported "Yfilter.add: nested path filters are not supported");
  if p.Ast.steps = [] then raise (Pf_intf.Unsupported "Yfilter.add: empty path");
  let sid = t.n_exprs in
  if t.n_exprs >= Array.length t.exprs then begin
    let bigger = Array.make (max 16 (2 * Array.length t.exprs)) p in
    Array.blit t.exprs 0 bigger 0 t.n_exprs;
    t.exprs <- bigger;
    let bigger_removed = Array.make (Array.length bigger) false in
    Array.blit t.removed 0 bigger_removed 0 t.n_exprs;
    t.removed <- bigger_removed
  end;
  t.exprs.(t.n_exprs) <- p;
  t.n_exprs <- t.n_exprs + 1;
  let enter state (step : Ast.step) ~descend =
    let state = if descend then loop_of t state else state in
    match step.Ast.test with
    | Ast.Tag tag -> tag_target t state tag
    | Ast.Wildcard -> star_target t state
  in
  let final =
    match p.Ast.steps with
    | [] -> assert false (* rejected above *)
    | first :: rest ->
      (* a relative expression matches anywhere: implicit leading [//] *)
      let descend_first = (not p.Ast.absolute) || first.Ast.axis = Ast.Descendant in
      let s0 = enter t.states.(0) first ~descend:descend_first in
      List.fold_left
        (fun s (step : Ast.step) -> enter s step ~descend:(step.Ast.axis = Ast.Descendant))
        s0 rest
  in
  if Ast.has_attr_filters p then final.filter_sids <- sid :: final.filter_sids
  else final.plain_sids <- sid :: final.plain_sids;
  sid

let add_string t s = add t (Parser.parse s)

let remove t sid =
  if sid < 0 || sid >= t.n_exprs || t.removed.(sid) then false
  else begin
    (* the accepting state keeps the sid; matching filters removed sids,
       so removal is constant-time and never restructures the NFA *)
    t.removed.(sid) <- true;
    true
  end

(* ------------------------------------------------------------------ *)
(* Execution *)

let ensure_runtime t =
  if Array.length t.set_stamp < t.n_states then begin
    let bigger = Array.make (max t.n_states (2 * Array.length t.set_stamp)) 0 in
    Array.blit t.set_stamp 0 bigger 0 (Array.length t.set_stamp);
    t.set_stamp <- bigger
  end;
  if Array.length t.sid_stamp < t.n_exprs then begin
    let bigger = Array.make (max t.n_exprs (2 * Array.length t.sid_stamp)) 0 in
    Array.blit t.sid_stamp 0 bigger 0 (Array.length t.sid_stamp);
    t.sid_stamp <- bigger
  end

let match_document t (doc : Pf_xml.Tree.t) =
  let lat0 = Pf_obs.Span.now () in
  ensure_runtime t;
  t.doc_epoch <- t.doc_epoch + 1;
  let matches = ref [] in
  let n_transitions = ref 0 and n_activations = ref 0 in
  (* current root-to-element path, for the postponed attribute check; the
     #text pseudo-attribute is materialized only when a check runs *)
  let path_stack : Pf_xml.Tree.element list ref = ref [] in
  let current_path () =
    let steps =
      List.rev_map
        (fun (e : Pf_xml.Tree.element) ->
          let attrs =
            match Pf_xml.Tree.text_content e with
            | "" -> e.Pf_xml.Tree.attrs
            | txt -> e.Pf_xml.Tree.attrs @ [ "#text", txt ]
          in
          { Pf_xml.Path.tag = e.Pf_xml.Tree.tag;
            sym = Pf_xml.Symbol.intern e.Pf_xml.Tree.tag; attrs; occurrence = 1;
            child_index = 1 })
        !path_stack
    in
    { Pf_xml.Path.steps = Array.of_list steps }
  in
  let mark_plain sid =
    if (not t.removed.(sid)) && t.sid_stamp.(sid) <> t.doc_epoch then begin
      t.sid_stamp.(sid) <- t.doc_epoch;
      matches := sid :: !matches
    end
  in
  let mark_filtered sid =
    if (not t.removed.(sid)) && t.sid_stamp.(sid) <> t.doc_epoch then
      if Eval.matches_doc_path t.exprs.(sid) (current_path ()) then begin
        t.sid_stamp.(sid) <- t.doc_epoch;
        matches := sid :: !matches
      end
  in
  (* Activate a state into the set being built: epsilon-closure pulls in
     loop children; accepting states report their sids. *)
  let rec activate acc s =
    if t.set_stamp.(s.id) = t.set_epoch then acc
    else begin
      incr n_activations;
      t.set_stamp.(s.id) <- t.set_epoch;
      (match s.plain_sids with [] -> () | sids -> List.iter mark_plain sids);
      (match s.filter_sids with [] -> () | sids -> List.iter mark_filtered sids);
      let acc = s :: acc in
      if s.loop_child >= 0 then activate acc t.states.(s.loop_child) else acc
    end
  in
  let transition active sym =
    incr n_transitions;
    t.set_epoch <- t.set_epoch + 1;
    let rec go acc = function
      | [] -> acc
      | s :: rest ->
        let acc = if s.is_loop then activate acc s else acc in
        let acc =
          if sym >= 0 then
            match Hashtbl.find_opt s.tag_edges sym with
            | Some id -> activate acc t.states.(id)
            | None -> acc
          else acc
        in
        let acc = if s.star_edge >= 0 then activate acc t.states.(s.star_edge) else acc in
        go acc rest
    in
    go [] active
  in
  let rec walk active (e : Pf_xml.Tree.element) =
    path_stack := e :: !path_stack;
    let next = transition active (symbol_find e.Pf_xml.Tree.tag) in
    if next <> [] then
      List.iter (walk next) (Pf_xml.Tree.element_children e);
    path_stack := List.tl !path_stack
  in
  (* initial active set: closure of the start state *)
  t.set_epoch <- t.set_epoch + 1;
  let initial = activate [] t.states.(0) in
  walk initial doc.Pf_xml.Tree.root;
  Pf_obs.Counter.add t.m.transitions !n_transitions;
  Pf_obs.Counter.add t.m.activations !n_activations;
  Pf_obs.Counter.incr t.m.documents;
  let result = List.sort compare !matches in
  Pf_obs.Counter.add t.m.matched (List.length result);
  Pf_obs.Qhist.observe t.m.latency
    (Int64.to_int (Int64.sub (Pf_obs.Span.now ()) lat0));
  result

let match_string t s = match_document t (Pf_xml.Sax.parse_document s)

(* Batched matching: the NFA/prefix-tree baselines have no cross-document
   state to amortize, so a batch is just the per-document loop. *)
let match_batch t docs = List.map (match_document t) docs
let match_string_batch t srcs = List.map (match_string t) srcs
