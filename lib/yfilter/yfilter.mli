(** YFilter baseline (Diao et al., ICDE 2002 / TODS 2003).

    A clean-room re-implementation of the automaton-based filter the paper
    compares against: all XPEs are combined into a single non-deterministic
    finite automaton whose transitions are triggered by element-start
    events; common expression prefixes share states. The descendant
    operator is modeled by a [*]-self-loop state entered by an
    epsilon-closure, wildcards by [*]-edges, and relative expressions by an
    implicit leading descendant. Execution keeps a run-time stack of active
    state sets and — unlike a classic NFA — continues past accepting states
    until all matches are found.

    Attribute filters use the selection-postponed strategy the YFilter
    authors recommend: they are only checked for structurally matched
    expressions, against the root-to-current-element path.

    The module satisfies {!Pf_intf.FILTER}. *)

type t

val create : unit -> t

val add : t -> Pf_xpath.Ast.path -> int
(** Register an expression, returning its sid (dense from 0). Nested path
    filters are not supported ({!Pf_intf.Unsupported}); attribute filters
    are. *)

val add_string : t -> string -> int

val remove : t -> int -> bool
(** Unregister an expression: its sid is no longer reported by matching.
    Returns [false] for unknown or already-removed sids. Constant-time —
    the NFA keeps its states ({!state_count} does not decrease). *)

val match_document : t -> Pf_xml.Tree.t -> int list
(** Sorted sids of all matching expressions. *)

val match_string : t -> string -> int list

val match_batch : t -> Pf_xml.Tree.t list -> int list list
(** [List.map (match_document t)] — no cross-document state to amortize. *)

val match_string_batch : t -> string list -> int list list

val expression_count : t -> int
val state_count : t -> int
(** NFA states — the structure-sharing metric. *)

val metrics : t -> Pf_obs.Registry.t
(** Metric registry (scope ["yfilter"]): counters ["documents"],
    ["nfa_transitions"] (transition rounds, one per element event with a
    live active set), ["state_activations"] (states activated including
    epsilon-closure) and ["matches"]. *)
