(** Index-Filter baseline (Bruno et al., ICDE 2003).

    A re-implementation of the index-based multi-query matcher the paper
    compares against. Queries are kept in a {e prefix tree} so common
    prefixes are evaluated once; for each document, {e index streams} are
    built over its elements (per tag, the document-order list of
    [(start, end, level)] intervals from a structural numbering), and
    matching descends the prefix tree joining each query node against the
    stream of its test, constrained by the parent match's interval
    (containment) and level (child vs. descendant axis).

    Following the paper's experimental setup: the algorithm stops working
    on a query subtree once all its expressions have matched ("we modify
    the Index-Filter algorithm to stop after determining one match"), and
    wildcards simply match any element (which inflates the index streams,
    as the paper observes). Attribute filters are checked inline against
    the element's attributes. Each (query node, element) pair is explored
    at most once per document.

    The module satisfies {!Pf_intf.FILTER}. *)

type t

val create : unit -> t

val add : t -> Pf_xpath.Ast.path -> int
(** Register an expression, returning its sid. Nested path filters are not
    supported ({!Pf_intf.Unsupported}). *)

val add_string : t -> string -> int

val remove : t -> int -> bool
(** Unregister an expression: its sid is no longer reported by matching.
    Returns [false] for unknown or already-removed sids. Constant-time —
    the prefix tree keeps its nodes ({!node_count} does not decrease). *)

val match_document : t -> Pf_xml.Tree.t -> int list
(** Sorted sids of all matching expressions. *)

val match_string : t -> string -> int list

val match_batch : t -> Pf_xml.Tree.t list -> int list list
(** [List.map (match_document t)] — no cross-document state to amortize. *)

val match_string_batch : t -> string list -> int list list

val expression_count : t -> int
val node_count : t -> int
(** Prefix-tree nodes — the sharing metric. *)

val metrics : t -> Pf_obs.Registry.t
(** Metric registry (scope ["indexfilter"]): counters ["documents"],
    ["stream_advances"] (index-stream elements inspected during joins),
    ["nodes_visited"] (accepted (query node, element) joins) and
    ["matches"]. *)
