open Pf_xpath

type qnode = {
  axis : Ast.axis;
  test : Ast.node_test;
  test_sym : int;  (* interned tag of [test]; -1 for wildcards *)
  filters : Ast.attr_filter list;  (* sorted, part of the sharing key *)
  mutable sids : int list;
  mutable children : qnode list;
  (* per-document scratch, epoch-guarded *)
  mutable visited : (int, unit) Hashtbl.t;
  mutable visited_epoch : int;
  mutable matched_epoch : int;  (* this node's sids have been reported *)
  mutable done_epoch : int;  (* entire subtree matched: prune *)
}

(* Execution counters: [stream_advances] counts index-stream elements
   inspected inside [explore] (the analogue of the predicate engine's
   probes), [nodes_visited] accepted (query node, element) joins. *)
type metrics = {
  registry : Pf_obs.Registry.t;
  documents : Pf_obs.Counter.t;
  stream_advances : Pf_obs.Counter.t;
  nodes_visited : Pf_obs.Counter.t;
  matched : Pf_obs.Counter.t;
  latency : Pf_obs.Qhist.t;
}

let make_metrics () =
  let registry = Pf_obs.Registry.create "indexfilter" in
  {
    registry;
    documents = Pf_obs.Counter.make ~registry "documents" ~help:"documents processed";
    stream_advances =
      Pf_obs.Counter.make ~registry "stream_advances"
        ~help:"index-stream elements inspected during joins";
    nodes_visited =
      Pf_obs.Counter.make ~registry "nodes_visited"
        ~help:"accepted (query node, element) joins";
    matched =
      Pf_obs.Counter.make ~registry "matches" ~help:"expression matches reported";
    latency =
      Pf_obs.Qhist.make ~registry "doc_latency_ns"
        ~help:"end-to-end per-document match latency, nanoseconds";
  }

type t = {
  mutable roots : qnode list;
  mutable n_exprs : int;
  mutable n_nodes : int;
  mutable removed : bool array;  (* sid -> unregistered (sids are not reused) *)
  mutable sid_stamp : int array;
  mutable doc_epoch : int;
  m : metrics;
}

let create () =
  {
    roots = [];
    n_exprs = 0;
    n_nodes = 0;
    removed = [||];
    sid_stamp = [||];
    doc_epoch = 0;
    m = make_metrics ();
  }

let expression_count t = t.n_exprs
let node_count t = t.n_nodes
let metrics t = t.m.registry

let attr_filters (s : Ast.step) =
  List.sort compare
    (List.filter_map
       (function Ast.Attr f -> Some f | Ast.Nested _ -> assert false (* rejected in add *))
       s.Ast.filters)

let add t (p : Ast.path) =
  (* reject unsupported expressions before touching any state, so a failed
     add leaves the prefix tree (and the sid sequence) unchanged *)
  if not (Ast.is_single_path p) then
    raise (Pf_intf.Unsupported "Index_filter.add: nested path filters are not supported");
  if p.Ast.steps = [] then raise (Pf_intf.Unsupported "Index_filter.add: empty path");
  let sid = t.n_exprs in
  t.n_exprs <- t.n_exprs + 1;
  if Array.length t.sid_stamp < t.n_exprs then begin
    let bigger = Array.make (max 16 (2 * Array.length t.sid_stamp)) 0 in
    Array.blit t.sid_stamp 0 bigger 0 (Array.length t.sid_stamp);
    t.sid_stamp <- bigger;
    let bigger_removed = Array.make (Array.length bigger) false in
    Array.blit t.removed 0 bigger_removed 0 (Array.length t.removed);
    t.removed <- bigger_removed
  end;
  let fresh axis test filters =
    t.n_nodes <- t.n_nodes + 1;
    {
      axis;
      test;
      test_sym =
        (match test with Ast.Tag tag -> Pf_xml.Symbol.intern tag | Ast.Wildcard -> -1);
      filters;
      sids = [];
      children = [];
      visited = Hashtbl.create 8;
      visited_epoch = 0;
      matched_epoch = 0;
      done_epoch = 0;
    }
  in
  let find_or_add get_set add_child axis test filters =
    match
      List.find_opt
        (fun (n : qnode) -> n.axis = axis && n.test = test && n.filters = filters)
        (get_set ())
    with
    | Some n -> n
    | None ->
      let n = fresh axis test filters in
      add_child n;
      n
  in
  let final =
    match p.Ast.steps with
    | [] -> assert false (* rejected above *)
    | first :: rest ->
      let first_axis =
        if (not p.Ast.absolute) || first.Ast.axis = Ast.Descendant then Ast.Descendant
        else Ast.Child
      in
      let node =
        find_or_add
          (fun () -> t.roots)
          (fun n -> t.roots <- n :: t.roots)
          first_axis first.Ast.test (attr_filters first)
      in
      List.fold_left
        (fun (parent : qnode) (s : Ast.step) ->
          find_or_add
            (fun () -> parent.children)
            (fun n -> parent.children <- n :: parent.children)
            s.Ast.axis s.Ast.test (attr_filters s))
        node rest
  in
  final.sids <- sid :: final.sids;
  sid

let add_string t s = add t (Parser.parse s)

let remove t sid =
  if sid < 0 || sid >= t.n_exprs || t.removed.(sid) then false
  else begin
    (* the prefix tree keeps the sid; matching filters removed sids, so
       removal is constant-time and never restructures the tree *)
    t.removed.(sid) <- true;
    true
  end

(* ------------------------------------------------------------------ *)
(* Index streams: per tag, the pre-order list of structural intervals. *)

type elem = {
  start : int;
  stop : int;
  level : int;
  attrs : (string * string) list;
}

type streams = {
  by_sym : elem array array;  (* indexed by tag symbol *)
  all : elem array;  (* wildcards match any element *)
}

let build_streams (doc : Pf_xml.Tree.t) =
  let counter = ref 0 in
  let by_sym = ref (Array.make 64 []) in
  let add_sym sym el =
    if sym >= Array.length !by_sym then begin
      let bigger = Array.make (max (sym + 1) (2 * Array.length !by_sym)) [] in
      Array.blit !by_sym 0 bigger 0 (Array.length !by_sym);
      by_sym := bigger
    end;
    !by_sym.(sym) <- el :: !by_sym.(sym)
  in
  let all = ref [] in
  let rec walk (e : Pf_xml.Tree.element) level =
    let start = !counter in
    incr counter;
    List.iter (fun c -> walk c (level + 1)) (Pf_xml.Tree.element_children e);
    let stop = !counter in
    incr counter;
    let attrs =
      match Pf_xml.Tree.text_content e with
      | "" -> e.Pf_xml.Tree.attrs
      | txt -> e.Pf_xml.Tree.attrs @ [ "#text", txt ]
    in
    let el = { start; stop; level; attrs } in
    add_sym (Pf_xml.Symbol.intern e.Pf_xml.Tree.tag) el;
    all := el :: !all
  in
  walk doc.Pf_xml.Tree.root 1;
  let sort_stream l = Array.of_list (List.sort (fun a b -> compare a.start b.start) l) in
  { by_sym = Array.map sort_stream !by_sym; all = sort_stream !all }

let empty_stream = [||]

let stream_of streams ~test_sym =
  if test_sym < 0 then streams.all
  else if test_sym < Array.length streams.by_sym then streams.by_sym.(test_sym)
  else empty_stream

(* First index whose start exceeds [x] (streams are sorted by start). *)
let lower_bound (s : elem array) x =
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid).start <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let filters_hold (e : elem) filters =
  List.for_all (fun f -> Eval.attr_satisfies e.attrs f) filters

let match_document t (doc : Pf_xml.Tree.t) =
  let lat0 = Pf_obs.Span.now () in
  t.doc_epoch <- t.doc_epoch + 1;
  let epoch = t.doc_epoch in
  let streams = build_streams doc in
  let matches = ref [] in
  let mark sid =
    if (not t.removed.(sid)) && t.sid_stamp.(sid) <> epoch then begin
      t.sid_stamp.(sid) <- epoch;
      matches := sid :: !matches
    end
  in
  let n_advances = ref 0 and n_visited = ref 0 in
  let rec explore (q : qnode) ~(parent : elem) =
    if q.done_epoch <> epoch then begin
      if q.visited_epoch <> epoch then begin
        q.visited_epoch <- epoch;
        Hashtbl.reset q.visited
      end;
      let stream = stream_of streams ~test_sym:q.test_sym in
      let i = ref (lower_bound stream parent.start) in
      let n = Array.length stream in
      while !i < n && stream.(!i).start < parent.stop && q.done_epoch <> epoch do
        let e = stream.(!i) in
        incr i;
        incr n_advances;
        let level_ok =
          match q.axis with
          | Ast.Child -> e.level = parent.level + 1
          | Ast.Descendant -> e.level > parent.level
        in
        if level_ok && (not (Hashtbl.mem q.visited e.start)) && filters_hold e q.filters
        then begin
          Hashtbl.add q.visited e.start ();
          incr n_visited;
          if q.sids <> [] && q.matched_epoch <> epoch then begin
            q.matched_epoch <- epoch;
            List.iter mark q.sids
          end;
          List.iter (fun c -> explore c ~parent:e) q.children;
          (* stop working on this subtree once everything below matched *)
          let self_done = q.sids = [] || q.matched_epoch = epoch in
          let children_done =
            List.for_all (fun (c : qnode) -> c.done_epoch = epoch) q.children
          in
          if self_done && children_done then q.done_epoch <- epoch
        end
      done
    end
  in
  let virtual_root = { start = -1; stop = max_int; level = 0; attrs = [] } in
  List.iter (fun q -> explore q ~parent:virtual_root) t.roots;
  Pf_obs.Counter.add t.m.stream_advances !n_advances;
  Pf_obs.Counter.add t.m.nodes_visited !n_visited;
  Pf_obs.Counter.incr t.m.documents;
  let result = List.sort compare !matches in
  Pf_obs.Counter.add t.m.matched (List.length result);
  Pf_obs.Qhist.observe t.m.latency
    (Int64.to_int (Int64.sub (Pf_obs.Span.now ()) lat0));
  result

let match_string t s = match_document t (Pf_xml.Sax.parse_document s)

(* Batched matching: the NFA/prefix-tree baselines have no cross-document
   state to amortize, so a batch is just the per-document loop. *)
let match_batch t docs = List.map (match_document t) docs
let match_string_batch t srcs = List.map (match_string t) srcs
