(* Side-by-side engine comparison on one workload — a miniature of the
   paper's Figure 6 experiment, with agreement checking.

   Run with:  dune exec examples/engine_comparison.exe [-- nitf|psd [NEXPRS]] *)

let () =
  let dtd_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "psd" in
  let count =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 10_000
  in
  let dtd =
    match Pf_workload.Dtd.by_name dtd_name with
    | Some d -> d
    | None -> failwith ("unknown DTD: " ^ dtd_name)
  in
  let queries =
    Pf_workload.Xpath_gen.generate dtd
      { Pf_workload.Presets.paper_queries with Pf_workload.Xpath_gen.count }
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd (Pf_workload.Presets.documents_for dtd_name) 50
  in
  Printf.printf "workload: %s, %d expressions, %d documents\n\n" dtd_name
    (List.length queries) (List.length docs);
  (* every engine is a Pf_intf.FILTER module: resolve by name, adapt
     uniformly — no per-engine plumbing *)
  let algorithms =
    List.map
      (fun name ->
        match Pf_bench.Bench_util.filter_of_name name with
        | Some f -> Pf_bench.Bench_util.of_filter ~name f
        | None -> failwith ("unknown engine: " ^ name))
      [ "basic"; "basic-pc"; "basic-pc-ap"; "yfilter"; "index-filter" ]
  in
  let results =
    List.map
      (fun (algo : Pf_bench.Bench_util.algorithm) ->
        let (), build_ms =
          Pf_bench.Bench_util.time_ms (fun () -> List.iter algo.add queries)
        in
        let per_doc = List.map (fun d -> algo.match_doc d) docs in
        let ms = Pf_bench.Bench_util.filter_time_ms algo docs in
        algo.name, build_ms, ms, per_doc)
      algorithms
  in
  Printf.printf "%-14s %12s %14s %10s\n" "algorithm" "build (ms)" "filter (ms/doc)" "matches";
  List.iter
    (fun (name, build, ms, per_doc) ->
      Printf.printf "%-14s %12.1f %14.3f %10d\n" name build ms
        (List.fold_left ( + ) 0 per_doc))
    results;
  (* every algorithm must report the same per-document match counts *)
  let counts = List.map (fun (_, _, _, c) -> c) results in
  let agree = List.for_all (fun c -> c = List.hd counts) counts in
  Printf.printf "\nall engines agree on every document: %b\n" agree;
  print_newline ();
  List.iter
    (fun (algo : Pf_bench.Bench_util.algorithm) ->
      Printf.printf "metrics[%s]: %s\n" algo.name
        (Pf_obs.Export.summary_line algo.metrics))
    algorithms;
  if not agree then exit 1
