(* Scaling the dissemination scenario over domains: one subscription set,
   a stream of NITF-like documents, and Pf_service fanning the stream over
   N engine replicas. Subscriptions change mid-stream — the epoch log
   guarantees each document sees exactly the subscriptions registered
   before it was submitted, on whichever domain it lands.

   Run with:  dune exec examples/parallel_service.exe [-- DOMAINS [NEXPRS]] *)

let () =
  let domains =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else min 4 (Domain.recommended_domain_count ())
  in
  let count = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20_000 in
  let dtd = Pf_workload.Dtd.nitf_like () in
  let queries =
    Pf_workload.Xpath_gen.generate dtd
      { Pf_workload.Presets.paper_queries with Pf_workload.Xpath_gen.count }
  in
  let docs =
    Pf_workload.Xml_gen.generate_many dtd (Pf_workload.Presets.documents_for "nitf") 100
  in
  let svc =
    Pf_service.create ~domains ~batch:8 (Pf_core.Engine.filter () :> Pf_intf.filter)
  in
  List.iter (fun q -> ignore (Pf_service.subscribe svc q)) queries;
  Printf.printf "service: %d domains, %d subscriptions, %d documents\n" domains
    (Pf_service.subscription_count svc) (List.length docs);

  (* phase 1: a burst of documents through the shared queue *)
  let t0 = Unix.gettimeofday () in
  let results = Pf_service.filter_batch svc docs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = List.fold_left (fun acc r -> acc + List.length r) 0 results in
  Printf.printf "burst: %d matches, %.0f docs/s\n" total
    (float (List.length docs) /. elapsed);

  (* phase 2: subscription churn interleaved with the stream — documents
     submitted before the new subscription must not match it, documents
     after must *)
  let matches_of sid results =
    List.length (List.filter (List.mem sid) results)
  in
  let before = Pf_service.filter_batch svc docs in
  let late_sid = Pf_service.subscribe_string svc "//*" in
  let after = Pf_service.filter_batch svc docs in
  Printf.printf "churn: late subscription matched %d/%d before, %d/%d after\n"
    (matches_of late_sid before) (List.length docs) (matches_of late_sid after)
    (List.length docs);
  ignore (Pf_service.unsubscribe svc late_sid);

  Pf_service.shutdown svc;
  Printf.printf "service metrics: %s\n"
    (Pf_obs.Export.summary_line (Pf_service.metrics svc));
  Printf.printf "engines (merged over %d replicas): %s\n" (domains + 1)
    (Pf_obs.Export.summary_line (Pf_service.engine_metrics svc));
  if matches_of late_sid before <> 0 || matches_of late_sid after <> List.length docs
  then exit 1
