(* Subscription churn — continuous insertion and removal under load.

   The paper argues (contrasting with compiled automata like XPush) that
   predicate-based filtering supports cheap online updates: insertion is
   constant-time per predicate and removal touches a single trie node.
   This example interleaves document matching with subscription churn and
   uses the streaming matcher (no document tree is ever built).

   Run with:  dune exec examples/subscription_churn.exe *)

let () =
  let dtd = Pf_workload.Dtd.nitf_like () in
  let engine = Pf_core.Engine.create ~dedup_paths:true () in
  let rng = Random.State.make [| 2026 |] in
  (* initial population *)
  let initial =
    Pf_workload.Xpath_gen.generate dtd
      { Pf_workload.Presets.paper_queries with Pf_workload.Xpath_gen.count = 50_000 }
  in
  let (), build_ms =
    Pf_bench.Bench_util.time_ms (fun () ->
        List.iter (fun p -> ignore (Pf_core.Engine.add engine p)) initial)
  in
  Printf.printf "registered %d subscriptions in %.0f ms (%.1f us each)\n"
    (List.length initial) build_ms
    (1000. *. build_ms /. float (List.length initial));

  (* live sid pool for churn *)
  let live = ref (List.mapi (fun i _ -> i) initial) in
  let fresh =
    let pool =
      Array.of_list
        (Pf_workload.Xpath_gen.generate dtd
           { Pf_workload.Presets.paper_queries with
             Pf_workload.Xpath_gen.count = 10_000; seed = 31 })
    in
    fun () -> pool.(Random.State.int rng (Array.length pool))
  in
  let docs =
    List.map Pf_xml.Print.to_string
      (Pf_workload.Xml_gen.generate_many dtd Pf_workload.Presets.nitf_documents 300)
  in
  let matches = ref 0 and added = ref 0 and removed = ref 0 in
  let (), run_ms =
    Pf_bench.Bench_util.time_ms (fun () ->
        List.iter
          (fun src ->
            (* filter the incoming document from its raw text *)
            matches := !matches + List.length (Pf_core.Engine.match_stream engine src);
            (* churn: 20 removals and 20 insertions per document *)
            for _ = 1 to 20 do
              match !live with
              | [] -> ()
              | sid :: rest ->
                if Pf_core.Engine.remove engine sid then incr removed;
                live := rest
            done;
            for _ = 1 to 20 do
              let sid = Pf_core.Engine.add engine (fresh ()) in
              live := !live @ [ sid ];
              incr added
            done)
          docs)
  in
  Printf.printf
    "streamed %d documents with churn: %d matches, +%d/-%d subscriptions, %.2f ms/doc\n"
    (List.length docs) !matches !added !removed
    (run_ms /. float (List.length docs));
  Printf.printf "engine now holds %d registered sids, %d distinct predicates\n"
    (Pf_core.Engine.expression_count engine)
    (Pf_core.Engine.distinct_predicate_count engine)
;
  print_endline ("metrics: " ^ Pf_obs.Export.summary_line (Pf_core.Engine.metrics engine))
