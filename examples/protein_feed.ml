(* Protein-database change feed — the paper's matching-heavy scenario.

   Research groups subscribe to structural patterns over protein entries
   (the PSD workload). Because most expressions match most entries, this is
   the regime where the predicate engine's sharing pays off; the example
   also demonstrates a large auto-generated subscription population
   alongside hand-written ones, and the inline vs. selection-postponed
   attribute modes.

   Run with:  dune exec examples/protein_feed.exe *)

let hand_written =
  [
    "lab-a", "/ProteinDatabase/ProteinEntry/protein/classification/superfamily";
    "lab-a", "//refinfo[@refid >= 500]/year";
    "lab-b", "/ProteinDatabase/ProteinEntry[genetics]/sequence";
    "lab-b", "//reference/refinfo/authors/author";
    "lab-c", "/ProteinDatabase/*/organism/source";
    "lab-c", "ProteinEntry[@id >= 5000]//citation";
  ]

let () =
  let dtd = Pf_workload.Dtd.psd_like () in
  let run attr_mode =
    let engine = Pf_core.Engine.create ~attr_mode () in
    List.iter (fun (_, e) -> ignore (Pf_core.Engine.add_string engine e)) hand_written;
    (* a large generated population on top, with attribute filters *)
    let generated =
      Pf_workload.Xpath_gen.generate dtd
        { Pf_workload.Presets.paper_queries with
          Pf_workload.Xpath_gen.count = 20_000; filters_per_path = 1; seed = 99 }
    in
    List.iter (fun p -> ignore (Pf_core.Engine.add engine p)) generated;
    let entries =
      Pf_workload.Xml_gen.generate_many dtd
        { Pf_workload.Presets.psd_documents with Pf_workload.Xml_gen.seed = 7 }
        100
    in
    let matches = ref 0 in
    let (), ms =
      Pf_bench.Bench_util.time_ms (fun () ->
          List.iter
            (fun doc ->
              matches := !matches + List.length (Pf_core.Engine.match_document engine doc))
            entries)
    in
    engine, !matches, ms, List.length entries
  in
  let engine, matches, ms, ndocs = run Pf_core.Engine.Inline in
  Printf.printf "inline attribute evaluation:\n";
  Printf.printf "  %d expressions, %d distinct predicates\n"
    (Pf_core.Engine.expression_count engine)
    (Pf_core.Engine.distinct_predicate_count engine);
  Printf.printf "  %d entries filtered in %.1f ms (%.3f ms/entry)\n" ndocs ms
    (ms /. float ndocs);
  Printf.printf "  %d total matches (%.1f%% of expressions per entry)\n\n" matches
    (100. *. float matches /. float (ndocs * Pf_core.Engine.expression_count engine));
  let engine_sp, matches_sp, ms_sp, _ = run Pf_core.Engine.Postponed in
  Printf.printf "selection-postponed attribute evaluation:\n";
  Printf.printf "  %d distinct predicates (fewer: constraints are not interned)\n"
    (Pf_core.Engine.distinct_predicate_count engine_sp);
  Printf.printf "  same matches: %b, time %.1f ms\n" (matches = matches_sp) ms_sp;
  Printf.printf
    "\nthe paper's Section 6.4 finding: on matching-heavy workloads inline wins,\n\
     because postponing re-runs the occurrence determination per structural match.\n"
;
  print_endline ("metrics: " ^ Pf_obs.Export.summary_line (Pf_core.Engine.metrics engine))
