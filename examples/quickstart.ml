(* Quickstart: register a handful of XPath expressions, filter a document,
   inspect what the engine built.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Create an engine. The default configuration is the paper's best
     variant (basic-pc-ap: prefix covering + access predicates) with inline
     attribute evaluation. *)
  let engine = Pf_core.Engine.create () in

  (* 2. Register filter expressions. Each gets a dense subscription id. *)
  let subscriptions =
    [
      "/catalog/book/title";           (* absolute path *)
      "book//author";                  (* relative, descendant *)
      "/catalog/*/price";              (* wildcard *)
      "book[@year >= 2000]";           (* attribute filter *)
      "/catalog/book[author]/price";   (* nested path filter *)
      "/catalog/cd/artist";            (* will not match below *)
    ]
  in
  let sids = List.map (fun s -> Pf_core.Engine.add_string engine s, s) subscriptions in

  (* 3. Filter a document. *)
  let document =
    {|<catalog>
        <book year="2003">
          <title>The Art of Filtering</title>
          <author>H. Jacobsen</author>
          <price currency="CAD">42</price>
        </book>
        <book year="1998">
          <title>Streams of XML</title>
          <price currency="USD">13</price>
        </book>
      </catalog>|}
  in
  let matched = Pf_core.Engine.match_string engine document in

  (* 4. Report. *)
  Printf.printf "matched %d of %d subscriptions:\n" (List.length matched)
    (List.length sids);
  List.iter
    (fun (sid, src) ->
      Printf.printf "  [%s] %s\n" (if List.mem sid matched then "x" else " ") src)
    sids;

  (* 5. A peek inside: how expressions were encoded, and how much sharing
     the predicate index achieved. *)
  print_newline ();
  List.iter
    (fun (_, src) ->
      match Pf_core.Encoder.encode_string src with
      | enc -> Format.printf "%a@." Pf_core.Encoder.pp enc
      | exception Pf_core.Encoder.Unsupported _ ->
        Format.printf "%s : (nested, handled by decomposition)@." src)
    sids;
  Printf.printf "\ndistinct predicates stored: %d (for %d expressions)\n"
    (Pf_core.Engine.distinct_predicate_count engine)
    (Pf_core.Engine.expression_count engine);

  (* 6. Why did a subscription match? Ask for a witness. *)
  let doc = Pf_xml.Sax.parse_document document in
  (match Pf_core.Engine.explain engine doc 1 (* book//author *) with
  | Some explanation ->
    Format.printf "@.witness for %S:@.%a"
      (List.assoc 1 (List.map (fun (s, src) -> s, src) sids))
      Pf_core.Engine.pp_explanation explanation
  | None -> print_endline "no witness")
;

  (* 7. One-line metrics digest of what the engine just did. *)
  print_endline ("\nmetrics: " ^ Pf_obs.Export.summary_line (Pf_core.Engine.metrics engine))
