(* Selective news dissemination — the paper's motivating scenario.

   A news hub receives NITF-style articles and forwards each to the users
   whose subscriptions it matches. This example registers a mixed
   subscription population (topic trackers, wire monitors, media watchers),
   streams generated articles through the engine and prints a delivery
   report.

   Run with:  dune exec examples/news_dissemination.exe *)

let subscriptions =
  [
    (* editors tracking urgent wire stories *)
    "alice", "/nitf/head/docdata/urgency[@ed-urg <= 2]";
    (* media desk: any article shipping images *)
    "bob", "//media/media-reference[@mime-type = 3]";
    "bob", "//media[@media-type >= 1]";
    (* local desk: anything locatable *)
    "carol", "//identified-content/location/city";
    "carol", "//dateline//location";
    (* syndication partner: series content with rights windows *)
    "dave", "/nitf/head/rights/rights.enddate";
    "dave", "//series[@series.totalpart >= 3]";
    (* archive crawler: everything with a document id *)
    "erin", "/nitf/head/docdata/doc-id";
    (* analytics: long tables *)
    "frank", "//table/table-row/table-cell[@colspan >= 2]";
    (* copy desk: quoted paragraphs anywhere under a block *)
    "grace", "//block/p/q";
  ]

let () =
  let engine = Pf_core.Engine.create () in
  let by_sid = Hashtbl.create 16 in
  List.iter
    (fun (user, expr) ->
      let sid = Pf_core.Engine.add_string engine expr in
      Hashtbl.add by_sid sid (user, expr))
    subscriptions;
  Printf.printf "%d subscriptions from %d users; %d distinct predicates stored\n\n"
    (Pf_core.Engine.expression_count engine)
    (List.length (List.sort_uniq compare (List.map fst subscriptions)))
    (Pf_core.Engine.distinct_predicate_count engine);

  (* stream a batch of generated articles through the hub *)
  let dtd = Pf_workload.Dtd.nitf_like () in
  let articles =
    Pf_workload.Xml_gen.generate_many dtd
      { Pf_workload.Presets.nitf_documents with Pf_workload.Xml_gen.seed = 2024 }
      200
  in
  let deliveries = Hashtbl.create 16 in
  let total = ref 0 in
  let (), ms =
    Pf_bench.Bench_util.time_ms (fun () ->
        List.iteri
          (fun i doc ->
            let matched = Pf_core.Engine.match_document engine doc in
            List.iter
              (fun sid ->
                incr total;
                let user, _ = Hashtbl.find by_sid sid in
                let n = try Hashtbl.find deliveries user with Not_found -> 0 in
                Hashtbl.replace deliveries user (n + 1);
                if i < 3 then
                  let _, expr = Hashtbl.find by_sid sid in
                  Printf.printf "article %d -> %s  (%s)\n" i user expr)
              matched)
          articles)
  in
  Printf.printf "\nfiltered %d articles in %.2f ms (%.3f ms/article), %d deliveries:\n"
    (List.length articles) ms
    (ms /. float (List.length articles))
    !total;
  Hashtbl.fold (fun user n acc -> (user, n) :: acc) deliveries []
  |> List.sort compare
  |> List.iter (fun (user, n) -> Printf.printf "  %-8s %4d articles\n" user n)
;
  print_endline ("\nmetrics: " ^ Pf_obs.Export.summary_line (Pf_core.Engine.metrics engine))
