(* Brokered dissemination — subscriber bookkeeping + covering suppression.

   Subscription populations are redundant in practice: many users register
   both broad and narrow versions of the same interest, or the same
   expressions as each other. The broker detects subscriptions that are
   covered by ones a subscriber already holds (the Section 4.2.2 covering
   relation, generalized beyond prefixes) and keeps them out of the engine
   without changing anyone's deliveries.

   Run with:  dune exec examples/brokered_dissemination.exe *)

let () =
  let dtd = Pf_workload.Dtd.auction_like () in
  let broker = Pf_broker.Broker.create () in
  let rng = Random.State.make [| 4242 |] in
  (* a subscriber pool registering redundancy-prone interests: each user
     draws a handful of expressions from a shared, smallish pool *)
  let pool =
    Array.of_list
      (Pf_workload.Xpath_gen.generate dtd
         { Pf_workload.Presets.paper_queries with Pf_workload.Xpath_gen.count = 800; seed = 5 })
  in
  let n_users = 400 in
  for u = 1 to n_users do
    let user = Printf.sprintf "user-%03d" u in
    let k = 3 + Random.State.int rng 8 in
    for _ = 1 to k do
      let expr = pool.(Random.State.int rng (Array.length pool)) in
      ignore (Pf_broker.Broker.subscribe_path broker ~subscriber:user expr)
    done
  done;
  let st = Pf_broker.Broker.stats broker in
  Format.printf "after registration:@.%a@.@." Pf_broker.Broker.pp_stats st;
  Printf.printf
    "covering suppression kept %d of %d subscriptions out of the engine (%.0f%%)\n\n"
    st.Pf_broker.Broker.suppressed st.Pf_broker.Broker.subscriptions
    (100.
    *. float st.Pf_broker.Broker.suppressed
    /. float (max 1 st.Pf_broker.Broker.subscriptions));
  (* publish a stream of auction-site documents *)
  let docs =
    Pf_workload.Xml_gen.generate_many dtd
      { Pf_workload.Presets.auction_documents with Pf_workload.Xml_gen.seed = 99 }
      100
  in
  let total = ref 0 in
  let (), ms =
    Pf_bench.Bench_util.time_ms (fun () ->
        List.iter
          (fun doc -> total := !total + List.length (Pf_broker.Broker.publish broker doc))
          docs)
  in
  Printf.printf "published %d documents in %.1f ms: %d subscriber deliveries\n"
    (List.length docs) ms !total;
  (* show one concrete delivery *)
  (match Pf_broker.Broker.publish broker (List.hd docs) with
  | [] -> print_endline "first document matched nobody"
  | { Pf_broker.Broker.subscriber; via } :: _ ->
    Printf.printf "e.g. %s receives the first document via:\n" subscriber;
    List.iter
      (fun sub ->
        Printf.printf "  %s\n"
          (Pf_xpath.Parser.to_string (Pf_broker.Broker.expression_of sub)))
      via);
  print_endline ("\nmetrics: " ^ Pf_obs.Export.summary_line (Pf_broker.Broker.metrics broker))
